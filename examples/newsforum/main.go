// Newsforum is the paper's causal-coherence example (§3.2.1): "such a
// coherence model could be applied to a Web forum, like a newsgroup, where
// a participant's reaction makes sense only if the audience has received
// the message that triggered the reaction."
//
// The forum is an AppLog object — an append-only log accessed through the
// typed Log handle. A poster publishes an article; a second participant
// reads it at their own cache and posts a reaction. Under the causal model
// (plus the Writes-Follow-Reads session guarantee for the reactor), no
// replica ever applies the reaction before the article.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/webobj"
)

func main() {
	sys := webobj.NewSystem()
	defer sys.Close()

	server, err := sys.NewServer("news.example.org")
	if err != nil {
		log.Fatal(err)
	}
	const forum = webobj.ObjectID("comp.dist.web-objects")
	if err := sys.Publish(server, forum, webobj.AppLog(), webobj.ForumStrategy()); err != nil {
		log.Fatal(err)
	}

	cacheA, err := sys.NewCache("cache-poster", server)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Replicate(cacheA, forum); err != nil {
		log.Fatal(err)
	}
	cacheB, err := sys.NewCache("cache-reactor", server)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Replicate(cacheB, forum, webobj.WritesFollowReads); err != nil {
		log.Fatal(err)
	}

	poster, err := sys.OpenLog(forum, webobj.At(cacheA))
	if err != nil {
		log.Fatal(err)
	}
	defer poster.Close()
	reactor, err := sys.OpenLog(forum, webobj.At(cacheB), webobj.WithSession(webobj.WritesFollowReads))
	if err != nil {
		log.Fatal(err)
	}
	defer reactor.Close()

	// The poster writes the article.
	if err := poster.Append([]byte("<post>Globe makes Web objects scalable.</post>")); err != nil {
		log.Fatal(err)
	}

	// The reactor waits until it has READ the article at its own cache —
	// this read is what creates the causal dependency.
	deadline := time.Now().Add(3 * time.Second)
	for {
		entries, err := reactor.Suffix(0)
		if err == nil && len(entries) > 0 && strings.Contains(string(entries[0]), "scalable") {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("article never reached the reactor's cache")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The reaction now causally follows the article.
	if err := reactor.Append([]byte("<reply>Agreed -- per-object coherence is the key.</reply>")); err != nil {
		log.Fatal(err)
	}

	// Every replica must show the article before the reaction.
	logs := []*webobj.Log{poster, reactor}
	for i, l := range logs {
		deadline := time.Now().Add(3 * time.Second)
		for {
			entries, err := l.Suffix(0)
			if err == nil {
				joined := make([]string, len(entries))
				for k, e := range entries {
					joined[k] = string(e)
				}
				s := strings.Join(joined, "\n")
				if strings.Contains(s, "<reply>") {
					if strings.Index(s, "<post>") > strings.Index(s, "<reply>") {
						log.Fatalf("causality violated at replica %d: %s", i, s)
					}
					fmt.Printf("replica %d sees causally ordered thread (%d entries)\n", i, len(entries))
					break
				}
			}
			if time.Now().After(deadline) {
				log.Fatalf("replica %d never saw the reaction", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fmt.Println("newsforum example OK")
}
