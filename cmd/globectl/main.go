// Command globectl is the client tool for globed daemons: it binds to a
// distributed Web object at any store and reads, writes, appends, deletes,
// or lists its pages over TCP.
//
//	globectl -store 127.0.0.1:7001 -object conf-page put index.html '<h1>hi</h1>'
//	globectl -store 127.0.0.1:7002 -object conf-page -session ryw get index.html
//	globectl -store 127.0.0.1:7002 -object conf-page pages
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics/webdoc"
	"repro/internal/transport/tcpnet"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("globectl: %v", err)
	}
}

func run() error {
	var (
		storeAddr = flag.String("store", "127.0.0.1:7001", "store address to bind to")
		object    = flag.String("object", "", "object ID (required)")
		session   = flag.String("session", "", "client models: ryw,mr,mw,wfr")
		clientID  = flag.Uint("client", 0, "client ID (0 = derive from pid/time)")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-call timeout")
	)
	flag.Parse()
	if *object == "" {
		return fmt.Errorf("-object is required")
	}
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: globectl [flags] get|put|append|delete|pages|stat [page] [content]")
	}

	models, err := parseSession(*session)
	if err != nil {
		return err
	}
	cid := ids.ClientID(*clientID)
	if cid == 0 {
		cid = ids.ClientID(time.Now().UnixNano()%1_000_000 + 2)
	}
	ep, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ep.Close()
	proxy, err := core.Bind(core.BindConfig{
		Object:    ids.ObjectID(*object),
		Endpoint:  ep,
		StoreAddr: *storeAddr,
		Client:    cid,
		Session:   models,
		Prototype: webdoc.New(),
		Timeout:   *timeout,
	})
	if err != nil {
		return err
	}
	defer proxy.Close()

	cmd := args[0]
	page := ""
	if len(args) > 1 {
		page = args[1]
	}
	switch cmd {
	case "get":
		out, err := proxy.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
		if err != nil {
			return err
		}
		pg, err := webdoc.DecodePage(out)
		if err != nil {
			return err
		}
		fmt.Printf("%s", pg.Content)
		if !strings.HasSuffix(string(pg.Content), "\n") {
			fmt.Println()
		}
		log.Printf("(version %d, %s, modified %s)", pg.Version, pg.ContentType,
			time.Unix(0, pg.ModifiedNanos).Format(time.RFC3339))
	case "stat":
		out, err := proxy.Invoke(msg.Invocation{Method: webdoc.MethodStatPage, Page: page})
		if err != nil {
			return err
		}
		pg, err := webdoc.DecodePage(out)
		if err != nil {
			return err
		}
		fmt.Printf("page=%s version=%d type=%s modified=%s\n", page, pg.Version,
			pg.ContentType, time.Unix(0, pg.ModifiedNanos).Format(time.RFC3339))
	case "put", "append":
		if len(args) < 3 {
			return fmt.Errorf("%s needs: page content", cmd)
		}
		method := webdoc.MethodPutPage
		if cmd == "append" {
			method = webdoc.MethodAppendPage
		}
		wargs := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
			Content:       []byte(args[2]),
			ContentType:   "text/html",
			ModifiedNanos: time.Now().UnixNano(),
		})
		if _, err := proxy.Invoke(msg.Invocation{Method: method, Page: page, Args: wargs}); err != nil {
			return err
		}
		fmt.Printf("%s %s OK (client %d)\n", cmd, page, cid)
	case "delete":
		if _, err := proxy.Invoke(msg.Invocation{Method: webdoc.MethodDeletePage, Page: page}); err != nil {
			return err
		}
		fmt.Printf("delete %s OK\n", page)
	case "pages":
		out, err := proxy.Invoke(msg.Invocation{Method: webdoc.MethodListPages})
		if err != nil {
			return err
		}
		names, err := webdoc.DecodeStrings(out)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	return nil
}

func parseSession(s string) ([]coherence.ClientModel, error) {
	if s == "" {
		return nil, nil
	}
	var out []coherence.ClientModel
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "ryw":
			out = append(out, coherence.ReadYourWrites)
		case "mr":
			out = append(out, coherence.MonotonicReads)
		case "mw":
			out = append(out, coherence.MonotonicWrites)
		case "wfr":
			out = append(out, coherence.WritesFollowReads)
		case "":
		default:
			return nil, fmt.Errorf("unknown session model %q", part)
		}
	}
	return out, nil
}
