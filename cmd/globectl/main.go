// Command globectl is the client tool for globed daemons: it binds to a
// distributed Web object at any store over TCP and invokes its methods
// through the typed webobj handles. It is built entirely on the public
// webobj API.
//
// Web documents (the default semantics):
//
//	globectl -store 127.0.0.1:7001 -object conf-page put index.html '<h1>hi</h1>'
//	globectl -store 127.0.0.1:7002 -object conf-page -session ryw get index.html
//	globectl -store 127.0.0.1:7002 -object conf-page pages
//
// Key-value maps and append-only logs:
//
//	globectl -store 127.0.0.1:7001 -object biblio -semantics kv put knuth 'TAOCP'
//	globectl -store 127.0.0.1:7001 -object biblio -semantics kv keys
//	globectl -store 127.0.0.1:7001 -object forum -semantics applog append 'hello'
//	globectl -store 127.0.0.1:7001 -object forum -semantics applog suffix 0
//
// With a name server, -store is unnecessary — the object is resolved and a
// replica chosen deterministically; the record's semantics type-checks the
// bind:
//
//	globectl -nameserver 127.0.0.1:7100 -object conf-page get index.html
//	globectl -nameserver 127.0.0.1:7100 -object conf-page resolve
//
// The ctl subcommands drive a daemon's control address to host or drop
// replicas at runtime, or to inspect one replica's counters and durability
// state (WAL size, last snapshot, recovery status):
//
//	globectl -ctl 127.0.0.1:7009 -object conf-page -session ryw ctl host
//	globectl -ctl 127.0.0.1:7009 -object conf-page ctl drop
//	globectl -ctl 127.0.0.1:7009 -object conf-page ctl stats
//
// Two daemon-wide ops need no -object: "ctl metrics" dumps the daemon's
// full metrics snapshot (JSON; populated when the daemon runs with
// -metrics-addr) and "ctl trace" prints the write-lifecycle trace ring
// (populated when the daemon runs with -trace-events):
//
//	globectl -ctl 127.0.0.1:7009 ctl metrics
//	globectl -ctl 127.0.0.1:7009 ctl trace
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/webobj"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("globectl: %v", err)
	}
}

func run() error {
	var (
		storeAddr  = flag.String("store", "", "store address to bind to (optional with -nameserver)")
		nameServer = flag.String("nameserver", "", "name-server address(es), comma-separated; resolves -object to a store")
		ctlAddr    = flag.String("ctl", "", "daemon control address (ctl subcommands)")
		object     = flag.String("object", "", "object ID (required)")
		semName    = flag.String("semantics", "webdoc", "semantics type: webdoc | kv | applog")
		session    = flag.String("session", "", "client models: ryw,mr,mw,wfr")
		clientID   = flag.Uint("client", 0, "client ID (0 = derive from time; writers in concurrent deployments should pin unique IDs)")
		timeout    = flag.Duration("timeout", 5*time.Second, "per-call timeout")
		ctlStore   = flag.String("ctl-store", "", "daemon store name a ctl subcommand targets (\"\" = the daemon's only store)")
		ctlParent  = flag.String("parent", "", "parent store address for ctl host (\"\" = resolve from the record)")
		ctlPublish = flag.Bool("publish", false, "ctl host publishes the object instead of replicating it")
		stratSpec  = flag.String("strategy", "conference", "strategy preset or text (ctl host -publish)")
	)
	flag.Parse()
	args := flag.Args()
	// The daemon-wide ctl ops address the whole daemon, not one object.
	daemonWide := len(args) >= 2 && args[0] == "ctl" &&
		(args[1] == "metrics" || args[1] == "trace")
	if *object == "" && !daemonWide {
		return fmt.Errorf("-object is required")
	}
	if len(args) == 0 {
		return fmt.Errorf("usage: globectl [flags] <command> [args]\n" +
			"  webdoc: get|stat|put|append|delete|pages\n" +
			"  kv:     get|put|delete|keys\n" +
			"  applog: append|len|entry|suffix\n" +
			"  naming: resolve\n" +
			"  daemon: ctl host | ctl drop | ctl stats | ctl metrics | ctl trace")
	}

	models, err := webobj.ClientModelsByNames(*session)
	if err != nil {
		return err
	}
	sem, err := webobj.SemanticsByName(*semName)
	if err != nil {
		return err
	}
	// With a name server, an unpinned client leases a globally unique ID;
	// without one, derive a quasi-unique ID below the lease base (pinned
	// IDs must stay outside the leased space).
	cid := uint32(*clientID)
	if cid == 0 && *nameServer == "" {
		cid = uint32(time.Now().UnixNano()%60_000 + 2)
	}

	sysOpts := []webobj.SystemOption{webobj.WithFabric(webobj.NewTCPFabric(""))}
	if *nameServer != "" {
		sysOpts = append(sysOpts, webobj.WithNameServer(strings.Split(*nameServer, ",")...))
	}
	sys := webobj.NewSystem(sysOpts...)
	defer sys.Close()
	obj := webobj.ObjectID(*object)

	switch args[0] {
	case "resolve":
		return runResolve(sys, obj)
	case "ctl":
		if len(args) < 2 {
			return fmt.Errorf("ctl needs a verb: host | drop | stats | metrics | trace")
		}
		if *ctlAddr == "" {
			return fmt.Errorf("ctl subcommands need -ctl <daemon control address>")
		}
		ctl, err := webobj.NewControl(webobj.NewTCPFabric(""), *ctlAddr)
		if err != nil {
			return err
		}
		defer ctl.Close()
		req := webobj.ControlRequest{
			Op:     args[1],
			Store:  *ctlStore,
			Object: *object,
			Parent: *ctlParent,
		}
		if args[1] == "host" {
			req.Publish = *ctlPublish
			req.Session = *session
			if *ctlPublish {
				req.Semantics = *semName
				req.Strategy = *stratSpec
			}
		}
		if args[1] == "stats" || args[1] == "metrics" {
			payload, err := ctl.CallPayload(req)
			if err != nil {
				return err
			}
			var pretty bytes.Buffer
			if err := json.Indent(&pretty, payload, "", "  "); err != nil {
				return err
			}
			fmt.Println(pretty.String())
			return nil
		}
		if args[1] == "trace" {
			events, err := ctl.Trace()
			if err != nil {
				return err
			}
			for _, e := range events {
				fmt.Println(e.String())
			}
			return nil
		}
		if err := ctl.Call(req); err != nil {
			return err
		}
		fmt.Printf("ctl %s %s OK\n", args[1], *object)
		return nil
	}

	opts := []webobj.OpenOption{
		webobj.WithSession(models...),
		webobj.WithTimeout(*timeout),
		webobj.AsClient(cid),
	}
	switch {
	case *storeAddr != "":
		remote, err := sys.AttachServer(*storeAddr)
		if err != nil {
			return err
		}
		opts = append(opts, webobj.At(remote))
	case *nameServer == "":
		return fmt.Errorf("need -store or -nameserver to reach the object")
	}

	switch sem.Name() {
	case "webdoc":
		doc, err := sys.OpenDocument(obj, opts...)
		if err != nil {
			return err
		}
		defer doc.Close()
		return runDoc(doc, uint32(doc.Client()), args)
	case "kvstore":
		m, err := sys.OpenMap(obj, opts...)
		if err != nil {
			return err
		}
		defer m.Close()
		return runMap(m, args)
	case "applog":
		l, err := sys.OpenLog(obj, opts...)
		if err != nil {
			return err
		}
		defer l.Close()
		return runLog(l, args)
	}
	return fmt.Errorf("unreachable semantics %q", sem.Name())
}

// runResolve prints an object's name record.
func runResolve(sys *webobj.System, obj webobj.ObjectID) error {
	rec, err := sys.ResolveName(obj)
	if err != nil {
		return err
	}
	fmt.Printf("object %s (record version %d)\n", rec.Object, rec.Version)
	if rec.Meta.Sem != "" {
		fmt.Printf("  semantics %s\n", rec.Meta.Sem)
	}
	if rec.Meta.HasStrat {
		fmt.Printf("  strategy  %v\n", rec.Meta.Strat)
	}
	if len(rec.Meta.Models) > 0 {
		fmt.Printf("  models    %s\n", strings.Join(rec.Meta.Models, ","))
	}
	for _, e := range rec.Entries {
		fmt.Printf("  replica   %s store=%d role=%v\n", e.Addr, e.Store, e.Role)
	}
	return nil
}

func runDoc(doc *webobj.Document, cid uint32, args []string) error {
	cmd := args[0]
	page := ""
	if len(args) > 1 {
		page = args[1]
	}
	switch cmd {
	case "get":
		pg, err := doc.Get(page)
		if err != nil {
			return err
		}
		fmt.Printf("%s", pg.Content)
		if !strings.HasSuffix(string(pg.Content), "\n") {
			fmt.Println()
		}
		log.Printf("(version %d, %s, modified %s)", pg.Version, pg.ContentType,
			time.Unix(0, pg.ModifiedNanos).Format(time.RFC3339))
	case "stat":
		pg, err := doc.Stat(page)
		if err != nil {
			return err
		}
		fmt.Printf("page=%s version=%d type=%s modified=%s\n", page, pg.Version,
			pg.ContentType, time.Unix(0, pg.ModifiedNanos).Format(time.RFC3339))
	case "put", "append":
		if len(args) < 3 {
			return fmt.Errorf("%s needs: page content", cmd)
		}
		var err error
		if cmd == "put" {
			err = doc.Put(page, []byte(args[2]), "text/html")
		} else {
			err = doc.Append(page, []byte(args[2]))
		}
		if err != nil {
			return err
		}
		fmt.Printf("%s %s OK (client %d)\n", cmd, page, cid)
	case "delete":
		if err := doc.Delete(page); err != nil {
			return err
		}
		fmt.Printf("delete %s OK\n", page)
	case "pages":
		names, err := doc.Pages()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
	default:
		return fmt.Errorf("unknown webdoc command %q (want get|stat|put|append|delete|pages)", cmd)
	}
	return nil
}

func runMap(m *webobj.Map, args []string) error {
	cmd := args[0]
	key := ""
	if len(args) > 1 {
		key = args[1]
	}
	switch cmd {
	case "get":
		v, err := m.Get(key)
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", v)
	case "put":
		if len(args) < 3 {
			return fmt.Errorf("put needs: key value")
		}
		if err := m.Put(key, []byte(args[2])); err != nil {
			return err
		}
		fmt.Printf("put %s OK\n", key)
	case "delete":
		if err := m.Delete(key); err != nil {
			return err
		}
		fmt.Printf("delete %s OK\n", key)
	case "keys":
		keys, err := m.Keys()
		if err != nil {
			return err
		}
		for _, k := range keys {
			fmt.Println(k)
		}
	default:
		return fmt.Errorf("unknown kv command %q (want get|put|delete|keys)", cmd)
	}
	return nil
}

func runLog(l *webobj.Log, args []string) error {
	cmd := args[0]
	switch cmd {
	case "append":
		if len(args) < 2 {
			return fmt.Errorf("append needs: payload")
		}
		if err := l.Append([]byte(args[1])); err != nil {
			return err
		}
		fmt.Println("append OK")
	case "len":
		n, err := l.Len()
		if err != nil {
			return err
		}
		fmt.Println(n)
	case "entry", "suffix":
		if len(args) < 2 {
			return fmt.Errorf("%s needs: index", cmd)
		}
		i, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad index %q", args[1])
		}
		if cmd == "entry" {
			e, err := l.Entry(i)
			if err != nil {
				return err
			}
			fmt.Printf("%s\n", e)
			return nil
		}
		entries, err := l.Suffix(i)
		if err != nil {
			return err
		}
		for _, e := range entries {
			fmt.Printf("%s\n", e)
		}
	default:
		return fmt.Errorf("unknown applog command %q (want append|len|entry|suffix)", cmd)
	}
	return nil
}
