// Command benchdiff compares the two most recent BENCH_<n>.json performance
// baselines and fails (exit 1) when a tracked metric regressed beyond the
// tolerance. It is the CI gate that keeps the perf trajectory recorded in
// the BENCH files monotonic: every PR that lands a BENCH_<n>.json must not
// regress ns/op or allocs/op of a benchmark the previous baseline tracked
// by more than the tolerance (default 20%).
//
// Usage:
//
//	benchdiff [-dir .] [-tolerance 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// benchFile mirrors the BENCH_<n>.json layout.
type benchFile struct {
	Issue      int                   `json:"issue"`
	Title      string                `json:"title"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Baseline map[string]float64 `json:"baseline"`
	After    map[string]float64 `json:"after"`
	Note     string             `json:"note"`
}

// tracked are the metrics the regression gate enforces; other recorded
// metrics (B/op, msgs/op, ...) are informational.
var tracked = []string{"ns_op", "allocs_op"}

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json files")
	tol := flag.Float64("tolerance", 0.20, "allowed relative regression per tracked metric")
	flag.Parse()

	files, err := loadAll(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(files) < 2 {
		fmt.Printf("benchdiff: %d baseline file(s) found, nothing to compare\n", len(files))
		return
	}
	prev, cur := files[len(files)-2], files[len(files)-1]
	fmt.Printf("benchdiff: BENCH_%d.json vs BENCH_%d.json (tolerance %.0f%%)\n",
		cur.Issue, prev.Issue, *tol*100)

	var regressions []string
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old, ok := prev.Benchmarks[name]
		if !ok || old.After == nil || cur.Benchmarks[name].After == nil {
			continue
		}
		now := cur.Benchmarks[name]
		for _, metric := range tracked {
			ov, haveOld := old.After[metric]
			nv, haveNew := now.After[metric]
			if !haveOld || !haveNew {
				continue
			}
			status := "ok"
			switch {
			case ov == 0 && nv > 0:
				status = "REGRESSION"
			case ov > 0 && nv > ov*(1+*tol):
				status = "REGRESSION"
			}
			fmt.Printf("  %-55s %-10s %12s -> %-12s %s\n",
				name, metric, fmtNum(ov), fmtNum(nv), status)
			if status == "REGRESSION" {
				regressions = append(regressions,
					fmt.Sprintf("%s %s: %s -> %s", name, metric, fmtNum(ov), fmtNum(nv)))
			}
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%:\n", len(regressions), *tol*100)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  ", r)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: no tracked regressions")
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// loadAll reads every BENCH_<n>.json in dir, ordered by n.
func loadAll(dir string) ([]benchFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []benchFile
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var bf benchFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if bf.Issue == 0 {
			bf.Issue = n
		}
		out = append(out, bf)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Issue < out[j].Issue })
	return out, nil
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
