// Command globebench runs the full reproduction experiment suite — one
// experiment per figure/table of the paper (see DESIGN.md §4 and
// EXPERIMENTS.md) — and prints the measured tables.
//
//	globebench            # full-size experiments
//	globebench -quick     # reduced sizes (CI-friendly)
//	globebench -only T2   # a single experiment by ID
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	only := flag.String("only", "", "run only the experiment with this ID (F1,F2,T1,T2,M1,M2,C1,E2E)")
	flag.Parse()

	opts := harness.Options{Quick: *quick}
	ran := 0
	for _, t := range harness.All(opts) {
		if *only != "" && t.ID != *only {
			continue
		}
		t.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "globebench: no experiment with ID %q\n", *only)
		os.Exit(1)
	}
}
