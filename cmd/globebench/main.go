// Command globebench runs the full reproduction experiment suite — one
// experiment per figure/table of the paper (see DESIGN.md §4 and
// EXPERIMENTS.md) — and prints the measured tables.
//
//	globebench              # full-size experiments
//	globebench -quick       # reduced sizes (CI-friendly)
//	globebench -only T2     # a single experiment by ID
//	globebench -json out.json  # also write machine-readable results ("-" for stdout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	only := flag.String("only", "", "run only the experiment with this ID (F1,F2,T1,T2,M1,M2,C1,E2E)")
	jsonPath := flag.String("json", "", "write results as JSON to this path (\"-\" for stdout); perf-trajectory support")
	flag.Parse()

	opts := harness.Options{Quick: *quick}
	var ran []*harness.Table
	for _, t := range harness.All(opts) {
		if *only != "" && t.ID != *only {
			continue
		}
		t.Fprint(os.Stdout)
		ran = append(ran, t)
	}
	if len(ran) == 0 {
		fmt.Fprintf(os.Stderr, "globebench: no experiment with ID %q\n", *only)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, ran); err != nil {
			fmt.Fprintf(os.Stderr, "globebench: %v\n", err)
			os.Exit(1)
		}
	}
}

func writeJSON(path string, tables []*harness.Table) error {
	b, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
