// Command globeload is the open-loop load generator for a distributed Web
// object deployment. It offers operations at a FIXED arrival rate (the way
// independent Web clients do) rather than as fast as replies return, and it
// measures every latency from the op's intended arrival time, so server
// stalls are charged to every op they delayed instead of silently pausing
// the clock — the coordinated-omission-safe methodology README.md's
// "Benchmarking at scale" section describes.
//
// Two modes:
//
//	-fabric mem   self-deploys a single permanent webdoc store on an
//	              in-process simulated network and drives it; -parallel
//	              switches the simulated network to per-shard parallel
//	              delivery. This is the 10^5..10^6-simulated-client mode.
//	-fabric tcp   drives an already-running deployment (e.g. a globed
//	              daemon) at -target host:port over real TCP.
//
// The report prints as JSON on stdout; -check additionally exits non-zero
// if any op failed or a histogram stayed empty, which is what the CI smoke
// job asserts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ids"
	"repro/internal/loadgen"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/transport/tcpnet"
)

func main() {
	var (
		fabricKind = flag.String("fabric", "mem", "network fabric: mem (self-deployed simulation) or tcp (drive a running deployment)")
		target     = flag.String("target", "", "store address to drive (tcp mode; required)")
		object     = flag.String("object", "loadgen-doc", "object ID to read and write")
		rate       = flag.Float64("rate", 2000, "offered arrival rate, ops/second")
		duration   = flag.Duration("duration", 0, "run length (alternative to -ops)")
		ops        = flag.Int("ops", 5000, "total ops to offer (0 with -duration set)")
		clients    = flag.Int("clients", 100000, "simulated client population (reader identities)")
		writers    = flag.Int("writers", 64, "writer identity pool size")
		workers    = flag.Int("workers", 16, "concurrent RPC workers")
		writeRatio = flag.Float64("write-ratio", 0.1, "fraction of ops that are writes")
		pages      = flag.Int("pages", 16, "distinct pages")
		zipf       = flag.Float64("zipf", 0, "page popularity skew (>1 enables Zipf)")
		writeSize  = flag.Int("write-size", 512, "bytes per write")
		seed       = flag.Int64("seed", 1998, "workload seed")
		clientBase = flag.Uint("client-base", 0, "identity offset, for multiple generator processes")
		timeout    = flag.Duration("timeout", 2*time.Second, "per-RPC timeout")
		parallel   = flag.Bool("parallel", false, "mem mode: parallel per-shard delivery instead of the deterministic single drainer")
		check      = flag.Bool("check", false, "exit non-zero on any error or empty histogram")
	)
	flag.Parse()

	var fab transport.Fabric
	addr := *target
	switch *fabricKind {
	case "mem":
		opts := []memnet.Option{memnet.WithSeed(*seed)}
		if *parallel {
			opts = append(opts, memnet.WithParallelDelivery())
		}
		net := memnet.New(opts...)
		defer net.Close()
		if addr == "" {
			addr = "perm"
		}
		s, err := loadgen.Deploy(net, addr, ids.ObjectID(*object))
		if err != nil {
			fatal("deploy: %v", err)
		}
		defer s.Close()
		fab = net
	case "tcp":
		if addr == "" {
			fatal("-fabric tcp requires -target host:port")
		}
		f := tcpnet.NewFabric("")
		defer f.Close()
		fab = f
	default:
		fatal("unknown -fabric %q (want mem or tcp)", *fabricKind)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Fabric: fab, Target: addr, Object: ids.ObjectID(*object),
		Rate: *rate, Duration: *duration, MaxOps: *ops,
		Clients: *clients, Writers: *writers, Workers: *workers,
		WriteRatio: *writeRatio, Pages: *pages, ZipfSkew: *zipf,
		WriteSize: *writeSize, Seed: *seed,
		ClientBase: uint32(*clientBase), Timeout: *timeout,
	})
	if err != nil {
		fatal("%v", err)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(string(out))
	if *check {
		switch {
		case rep.Errors > 0:
			fatal("check: %d of %d ops failed (%d timeouts)", rep.Errors, rep.Offered, rep.Timeouts)
		case rep.Completed == 0:
			fatal("check: no ops completed")
		case *writeRatio > 0 && rep.Write.Count == 0:
			fatal("check: write histogram empty at write-ratio %g", *writeRatio)
		case *writeRatio < 1 && rep.Read.Count == 0:
			fatal("check: read histogram empty at write-ratio %g", *writeRatio)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "globeload: "+format+"\n", args...)
	os.Exit(1)
}
