// Command globed is a store daemon: it hosts replicas of distributed Web
// objects over real TCP, in any of the paper's three store layers. It is
// built entirely on the public webobj API — the same calls a simulation
// makes, deployed over the TCP fabric.
//
// A daemon hosts any number of objects across any number of stores, driven
// by a manifest, and can add or drop replicas at runtime through its
// control address:
//
//	globed -manifest deploy.json
//
// where deploy.json looks like
//
//	{
//	  "nameserver": "127.0.0.1:7100",
//	  "control":    "127.0.0.1:7009",
//	  "digest":     "50ms",
//	  "stores": [
//	    {"listen": "127.0.0.1:7001", "role": "permanent", "objects": [
//	      {"object": "conf-page", "publish": true, "semantics": "webdoc",
//	       "strategy": "conference", "session": "ryw"},
//	      {"object": "biblio", "publish": true, "semantics": "kv",
//	       "strategy": "forum"}
//	    ]},
//	    {"listen": "127.0.0.1:7002", "role": "cache", "objects": [
//	      {"object": "conf-page", "session": "ryw"}
//	    ]}
//	  ]
//	}
//
// With a name server configured, replica objects need no semantics,
// strategy, or parent: the daemon resolves the published record and
// replicates from the object's permanent store. Store IDs are leased from
// the name server (globally unique across daemons) unless pinned with
// "id". Without a name server, replicas must name a "parent" and the
// publisher's semantics/strategy must be mirrored per object.
//
// The single-object flag form from earlier releases still works:
//
//	globed -listen 127.0.0.1:7001 -object conf-page -role permanent -strategy conference
//	globed -listen 127.0.0.1:7002 -object conf-page -role cache -parent 127.0.0.1:7001 -strategy conference -session ryw -id 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/webobj"
)

// manifest mirrors the deployment JSON.
type manifest struct {
	NameServer  string `json:"nameserver,omitempty"`
	Control     string `json:"control,omitempty"`
	Digest      string `json:"digest,omitempty"`
	DemandRetry string `json:"demand_retry,omitempty"`
	MaxFrame    int    `json:"max_frame,omitempty"`
	DataDir     string `json:"data_dir,omitempty"`
	Fsync       string `json:"fsync,omitempty"`          // off | interval | always
	FsyncEvery  string `json:"fsync_interval,omitempty"` // flush cadence under "interval"
	// ReparentAfter turns on replica self-healing: a replica missing this
	// many consecutive digest heartbeats from its parent re-resolves and
	// re-subscribes at another live replica. Requires a digest interval.
	ReparentAfter int `json:"reparent_after,omitempty"`
	// LeaseRenew is the contact-lease heartbeat period; set it to at most
	// a third of the name server's -lease-ttl.
	LeaseRenew string `json:"lease_renew,omitempty"`
	// Metrics is an HTTP listen address; when set the daemon serves the
	// metrics registry in Prometheus text format at /metrics (plus
	// net/http/pprof under /debug/pprof/) and every hosted replica records
	// its replication, WAL, and propagation-lag series.
	Metrics string `json:"metrics,omitempty"`
	// TraceEvents sizes the write-lifecycle trace ring (0 disables); read
	// it with globectl ctl trace.
	TraceEvents int         `json:"trace_events,omitempty"`
	Stores      []storeSpec `json:"stores"`
}

type storeSpec struct {
	Name    string    `json:"name,omitempty"` // defaults to Listen
	Listen  string    `json:"listen"`
	Role    string    `json:"role"`
	ID      uint32    `json:"id,omitempty"`     // 0 = allocate (leased with a name server)
	Parent  string    `json:"parent,omitempty"` // default upstream for this store's replicas
	Objects []objSpec `json:"objects"`
}

type objSpec struct {
	Object    string `json:"object"`
	Publish   bool   `json:"publish,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Session   string `json:"session,omitempty"`
	Parent    string `json:"parent,omitempty"` // per-object upstream override
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("globed: %v", err)
	}
}

func run() error {
	var (
		manifestPath = flag.String("manifest", "", "deployment manifest (JSON); supersedes the single-object flags")
		nameServer   = flag.String("nameserver", "", "name-server address(es), comma-separated; overrides the manifest's")
		control      = flag.String("control", "", "control RPC listen address (host/drop replicas at runtime); overrides the manifest's")
		listen       = flag.String("listen", "127.0.0.1:7001", "TCP address to listen on (single-object form)")
		object       = flag.String("object", "", "object ID to host (single-object form)")
		role         = flag.String("role", "permanent", "store role: permanent | mirror | cache")
		parent       = flag.String("parent", "", "parent store address (replica roles; optional with -nameserver)")
		stratName    = flag.String("strategy", "conference", "strategy preset ("+presetNames()+") or strategy text")
		semName      = flag.String("semantics", "webdoc", "semantics type: webdoc | kv | applog")
		session      = flag.String("session", "", "comma-separated client models this store supports: ryw,mr,mw,wfr")
		storeID      = flag.Uint("id", 0, "store ID (0 = allocate; leased from the name server when configured)")
		digest       = flag.Duration("digest", 0, "anti-entropy digest heartbeat interval (0 disables)")
		demRetry     = flag.Duration("demand-retry", 0, "unanswered-demand re-request delay (0 = 50ms default, negative disables)")
		maxFrame     = flag.Int("max-frame", 0, "per-peer inbound frame budget in bytes (0 = 16MiB cap); reject larger frames before allocation")
		dataDir      = flag.String("data-dir", "", "directory for permanent stores' write-ahead logs; empty = memory-only (overrides the manifest's)")
		fsync        = flag.String("fsync", "", "WAL flush policy: off | interval | always (overrides the manifest's)")
		fsyncEvery   = flag.Duration("fsync-interval", 0, "flush cadence under -fsync interval (default 100ms)")
		reparent     = flag.Int("reparent-after", 0, "re-parent a replica after this many consecutive missed parent digests (0 disables; needs -digest)")
		leaseRenew   = flag.Duration("lease-renew", 0, "contact-lease heartbeat period (set to ≤ a third of the name server's -lease-ttl; 0 disables)")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP listen address for Prometheus /metrics and /debug/pprof (overrides the manifest's; empty disables)")
		traceEvents  = flag.Int("trace-events", 0, "write-lifecycle trace ring size, read via globectl ctl trace (overrides the manifest's; 0 disables)")
	)
	flag.Parse()

	var m manifest
	if *manifestPath != "" {
		data, err := os.ReadFile(*manifestPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("manifest %s: %w", *manifestPath, err)
		}
	} else {
		// Synthesize a one-store one-object manifest from the legacy flags.
		if *object == "" {
			return fmt.Errorf("-object is required without -manifest")
		}
		spec := objSpec{Object: *object, Session: *session}
		if *role == "permanent" {
			spec.Publish = true
			spec.Semantics = *semName
			spec.Strategy = *stratName
		} else if *nameServer == "" || *parent != "" {
			// Without a name server the replica mirrors the publisher's
			// configuration manually (the pre-name-service deployment mode).
			spec.Semantics = *semName
			spec.Strategy = *stratName
		}
		m.Stores = []storeSpec{{
			Listen: *listen, Role: *role, ID: uint32(*storeID),
			Parent: *parent, Objects: []objSpec{spec},
		}}
	}
	if *nameServer != "" {
		m.NameServer = *nameServer
	}
	if *control != "" {
		m.Control = *control
	}
	if *maxFrame != 0 {
		m.MaxFrame = *maxFrame
	}
	if *dataDir != "" {
		m.DataDir = *dataDir
	}
	if *fsync != "" {
		m.Fsync = *fsync
	}
	if *metricsAddr != "" {
		m.Metrics = *metricsAddr
	}
	if *traceEvents != 0 {
		m.TraceEvents = *traceEvents
	}
	digestIv, err := durationField(m.Digest, *digest)
	if err != nil {
		return fmt.Errorf("digest: %w", err)
	}
	retryIv, err := durationField(m.DemandRetry, *demRetry)
	if err != nil {
		return fmt.Errorf("demand_retry: %w", err)
	}
	if *reparent != 0 {
		m.ReparentAfter = *reparent
	}
	renewIv, err := durationField(m.LeaseRenew, *leaseRenew)
	if err != nil {
		return fmt.Errorf("lease_renew: %w", err)
	}
	if m.ReparentAfter > 0 && digestIv <= 0 {
		return fmt.Errorf("reparent_after needs a digest interval (the heartbeat is the liveness signal)")
	}
	if len(m.Stores) == 0 {
		return fmt.Errorf("manifest defines no stores")
	}
	if err := validateDurability(m); err != nil {
		return err
	}

	sysOpts := []webobj.SystemOption{
		webobj.WithFabric(webobj.NewTCPFabric("", webobj.WithMaxInboundFrame(m.MaxFrame))),
		webobj.WithDigestInterval(digestIv),
		webobj.WithDemandRetry(retryIv),
	}
	if m.ReparentAfter > 0 {
		sysOpts = append(sysOpts, webobj.WithReparenting(m.ReparentAfter))
	}
	if m.Metrics != "" {
		sysOpts = append(sysOpts, webobj.WithMetrics())
	}
	if m.TraceEvents > 0 {
		sysOpts = append(sysOpts, webobj.WithTrace(m.TraceEvents))
	}
	if renewIv > 0 {
		sysOpts = append(sysOpts, webobj.WithLeaseRenewal(renewIv))
	}
	if m.DataDir != "" {
		policy, err := webobj.ParseFsyncPolicy(m.Fsync)
		if err != nil {
			return err
		}
		syncIv, err := durationField(m.FsyncEvery, *fsyncEvery)
		if err != nil {
			return fmt.Errorf("fsync_interval: %w", err)
		}
		sysOpts = append(sysOpts,
			webobj.WithDataDir(m.DataDir),
			webobj.WithDurability(webobj.Durability{Fsync: policy, SyncInterval: syncIv}))
	}
	if m.NameServer != "" {
		sysOpts = append(sysOpts, webobj.WithNameServer(strings.Split(m.NameServer, ",")...))
	}
	sys := webobj.NewSystem(sysOpts...)
	defer sys.Close()

	type hosted struct {
		store *webobj.Store
		obj   webobj.ObjectID
	}
	var all []hosted
	for _, spec := range m.Stores {
		st, err := createStore(sys, spec)
		if err != nil {
			return err
		}
		for _, o := range spec.Objects {
			if err := hostObject(sys, st, spec, o); err != nil {
				return fmt.Errorf("store %s object %s: %w", spec.Listen, o.Object, err)
			}
			all = append(all, hosted{store: st, obj: webobj.ObjectID(o.Object)})
			verb := "replicating"
			if o.Publish {
				verb = "publishing"
			}
			log.Printf("globed: %s store at %s %s %q", spec.Role, st.Addr(), verb, o.Object)
		}
	}
	if m.Control != "" {
		addr, err := sys.ServeControl(m.Control)
		if err != nil {
			return err
		}
		log.Printf("globed: control RPC at %s", addr)
	}
	if m.Metrics != "" {
		addr, err := serveMetrics(sys, m.Metrics)
		if err != nil {
			return err
		}
		log.Printf("globed: Prometheus metrics at http://%s/metrics (pprof under /debug/pprof/)", addr)
	}
	if m.TraceEvents > 0 {
		log.Printf("globed: tracing the last %d write-lifecycle events (globectl ctl trace)", m.TraceEvents)
	}
	if m.NameServer != "" {
		log.Printf("globed: registered with name server %s", m.NameServer)
	}
	if m.DataDir != "" {
		policy := m.Fsync
		if policy == "" {
			policy = "off"
		}
		log.Printf("globed: durable permanent stores under %s (fsync=%s)", m.DataDir, policy)
	}
	if digestIv > 0 {
		log.Printf("globed: digest heartbeats every %v (jittered)", digestIv)
	}
	if m.ReparentAfter > 0 {
		log.Printf("globed: replicas re-parent after %d missed parent digests", m.ReparentAfter)
	}
	if renewIv > 0 {
		log.Printf("globed: renewing contact leases every %v", renewIv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			log.Printf("globed: shutting down")
			return nil
		case <-ticker.C:
			for _, h := range all {
				if stats, err := h.store.Stats(h.obj); err == nil {
					log.Printf("globed: %s %q stats %+v", h.store.Addr(), h.obj, stats)
				}
			}
		}
	}
}

// serveMetrics starts the daemon's HTTP observability listener: the metrics
// registry in Prometheus text format at /metrics, and the standard
// net/http/pprof handlers under /debug/pprof/. It returns the resolved
// listen address.
func serveMetrics(sys *webobj.System, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listen %q: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", sys.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// validateDurability rejects a manifest whose data_dir cannot take effect:
// only permanent-role stores persist (durable mirrors are a planned
// follow-on), so a daemon hosting exclusively mirrors/caches with a
// data_dir configured would silently run without the durability its
// operator asked for. Fail at manifest validation instead.
func validateDurability(m manifest) error {
	if m.DataDir == "" {
		return nil
	}
	var roles []string
	for _, spec := range m.Stores {
		if spec.Role == "permanent" {
			return nil
		}
		roles = append(roles, spec.Role)
	}
	return fmt.Errorf("data_dir %q set but the manifest hosts no permanent store (roles: %s): only permanent stores are durable — durable mirrors are a planned follow-on",
		m.DataDir, strings.Join(roles, ", "))
}

// createStore builds one manifest store (without its replicas' parents —
// those attach per object).
func createStore(sys *webobj.System, spec storeSpec) (*webobj.Store, error) {
	name := spec.Name
	if name == "" {
		name = spec.Listen
	}
	var opts []webobj.StoreOption
	if name != spec.Listen {
		opts = append(opts, webobj.WithListenAddr(spec.Listen))
	}
	if spec.ID != 0 {
		opts = append(opts, webobj.WithStoreID(spec.ID))
	}
	var defaultParent *webobj.Store
	if spec.Parent != "" {
		p, err := attachOrReuse(sys, spec.Parent)
		if err != nil {
			return nil, err
		}
		defaultParent = p
	}
	switch spec.Role {
	case "permanent":
		return sys.NewServer(name, opts...)
	case "mirror", "object-initiated":
		return sys.NewMirror(name, defaultParent, opts...)
	case "cache", "client-initiated":
		return sys.NewCache(name, defaultParent, opts...)
	default:
		return nil, fmt.Errorf("unknown role %q", spec.Role)
	}
}

// hostObject publishes or replicates one manifest object at its store.
func hostObject(sys *webobj.System, st *webobj.Store, spec storeSpec, o objSpec) error {
	obj := webobj.ObjectID(o.Object)
	models, err := webobj.ClientModelsByNames(o.Session)
	if err != nil {
		return err
	}
	if o.Publish {
		sem, err := webobj.SemanticsByName(o.Semantics)
		if err != nil {
			return err
		}
		strat, err := webobj.StrategyBySpec(o.Strategy)
		if err != nil {
			return err
		}
		return sys.Publish(st, obj, sem, strat, models...)
	}
	// Replica. Manual mirroring (no name server) needs the published
	// semantics/strategy declared per object; with a name server the
	// record supplies them.
	parentAddr := o.Parent
	if parentAddr == "" {
		parentAddr = spec.Parent
	}
	if o.Semantics != "" || o.Strategy != "" {
		if parentAddr == "" {
			return fmt.Errorf("replica with manual semantics/strategy needs a parent")
		}
		sem, err := webobj.SemanticsByName(o.Semantics)
		if err != nil {
			return err
		}
		strat, err := webobj.StrategyBySpec(o.Strategy)
		if err != nil {
			return err
		}
		up, err := attachOrReuse(sys, parentAddr)
		if err != nil {
			return err
		}
		if err := sys.AttachObject(up, obj, sem, strat); err != nil {
			return err
		}
		return sys.ReplicateFrom(st, up, obj, models...)
	}
	if parentAddr == "" {
		rec, err := sys.ResolveName(obj)
		if err != nil {
			return fmt.Errorf("no parent given and record unresolvable: %w", err)
		}
		parentAddr = webobj.ParentFromRecord(rec, st.Addr())
		if parentAddr == "" {
			return fmt.Errorf("record for %q lists no permanent store", obj)
		}
	}
	up, err := attachOrReuse(sys, parentAddr)
	if err != nil {
		return err
	}
	return sys.ReplicateFrom(st, up, obj, models...)
}

// attachOrReuse attaches a remote store handle once per address.
func attachOrReuse(sys *webobj.System, addr string) (*webobj.Store, error) {
	if st, ok := sys.LookupStore(addr); ok {
		return st, nil
	}
	return sys.AttachServer(addr)
}

// durationField resolves a manifest duration string with a flag override.
func durationField(text string, flagVal time.Duration) (time.Duration, error) {
	if flagVal != 0 {
		return flagVal, nil
	}
	if text == "" {
		return 0, nil
	}
	return time.ParseDuration(text)
}

func presetNames() string {
	ps := webobj.StrategyPresets()
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}
