// Command globed is a store daemon: it hosts replicas of distributed Web
// objects over real TCP, in any of the paper's three store layers. A
// permanent store publishes an object; mirror/cache stores replicate it
// from a parent daemon. It is built entirely on the public webobj API —
// the same calls a simulation makes, deployed over the TCP fabric.
//
// Start a Web server (permanent store) publishing a document:
//
//	globed -listen 127.0.0.1:7001 -object conf-page -role permanent -strategy conference
//
// Start a proxy cache replicating it:
//
//	globed -listen 127.0.0.1:7002 -object conf-page -role cache -parent 127.0.0.1:7001 -strategy conference -session ryw -id 2
//
// Then use globectl to read and write pages. Non-webdoc objects pick their
// semantics type with -semantics kv | applog.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/webobj"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("globed: %v", err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "TCP address to listen on")
		object    = flag.String("object", "", "object ID to host (required)")
		role      = flag.String("role", "permanent", "store role: permanent | mirror | cache")
		parent    = flag.String("parent", "", "parent store address (required for mirror/cache)")
		stratName = flag.String("strategy", "conference", "strategy preset: "+presetNames())
		semName   = flag.String("semantics", "webdoc", "semantics type: webdoc | kv | applog")
		session   = flag.String("session", "", "comma-separated client models this store supports: ryw,mr,mw,wfr")
		storeID   = flag.Uint("id", 1, "store ID (unique per deployment)")
		digest    = flag.Duration("digest", 0, "anti-entropy digest heartbeat interval (0 disables); children behind lost updates resync within ~one interval")
		demRetry  = flag.Duration("demand-retry", 0, "unanswered-demand re-request delay (0 = 50ms default, negative disables); keep well below -digest")
	)
	flag.Parse()
	if *object == "" {
		return fmt.Errorf("-object is required")
	}
	strat, ok := webobj.StrategyPresets()[*stratName]
	if !ok {
		return fmt.Errorf("unknown strategy %q (have: %s)", *stratName, presetNames())
	}
	sem, err := webobj.SemanticsByName(*semName)
	if err != nil {
		return err
	}
	models, err := webobj.ClientModelsByNames(*session)
	if err != nil {
		return err
	}

	// One System over the TCP fabric; the store name is the listen address,
	// which pins the daemon's advertised endpoint.
	sys := webobj.NewSystem(
		webobj.WithFabric(webobj.NewTCPFabric("")),
		webobj.WithDigestInterval(*digest),
		webobj.WithDemandRetry(*demRetry),
	)
	defer sys.Close()
	obj := webobj.ObjectID(*object)
	idOpt := webobj.WithStoreID(uint32(*storeID))

	var st *webobj.Store
	switch *role {
	case "permanent":
		if st, err = sys.NewServer(*listen, idOpt); err != nil {
			return err
		}
		if err := sys.Publish(st, obj, sem, strat, models...); err != nil {
			return err
		}
	case "mirror", "object-initiated", "cache", "client-initiated":
		if *parent == "" {
			return fmt.Errorf("role %s requires -parent", *role)
		}
		up, err := sys.AttachServer(*parent)
		if err != nil {
			return err
		}
		if err := sys.AttachObject(up, obj, sem, strat); err != nil {
			return err
		}
		if *role == "mirror" || *role == "object-initiated" {
			st, err = sys.NewMirror(*listen, up, idOpt)
		} else {
			st, err = sys.NewCache(*listen, up, idOpt)
		}
		if err != nil {
			return err
		}
		if err := sys.Replicate(st, obj, models...); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown role %q", *role)
	}

	log.Printf("globed: %s store %d hosting %q (%s) at %s (strategy %s)",
		*role, *storeID, *object, sem.Name(), st.Addr(), *stratName)
	if *parent != "" {
		log.Printf("globed: subscribed to parent %s", *parent)
	}
	if *digest > 0 {
		log.Printf("globed: digest heartbeats every %v (jittered)", *digest)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			log.Printf("globed: shutting down")
			return nil
		case <-ticker.C:
			if stats, err := st.Stats(obj); err == nil {
				log.Printf("globed: stats %+v", stats)
			}
		}
	}
}

func presetNames() string {
	ps := webobj.StrategyPresets()
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}
