// Command globed is a store daemon: it hosts replicas of distributed Web
// objects over real TCP, in any of the paper's three store layers. A
// permanent store publishes a document; mirror/cache stores replicate it
// from a parent daemon.
//
// Start a Web server (permanent store) publishing a document:
//
//	globed -listen 127.0.0.1:7001 -object conf-page -role permanent -strategy conference
//
// Start a proxy cache replicating it:
//
//	globed -listen 127.0.0.1:7002 -object conf-page -role cache -parent 127.0.0.1:7001 -strategy conference -session ryw
//
// Then use globectl to read and write pages.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/tcpnet"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("globed: %v", err)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7001", "TCP address to listen on")
		object    = flag.String("object", "", "object ID to host (required)")
		role      = flag.String("role", "permanent", "store role: permanent | mirror | cache")
		parent    = flag.String("parent", "", "parent store address (required for mirror/cache)")
		stratName = flag.String("strategy", "conference", "strategy preset: "+presetNames())
		session   = flag.String("session", "", "comma-separated client models this store supports: ryw,mr,mw,wfr")
		storeID   = flag.Uint("id", 1, "store ID (unique per deployment)")
	)
	flag.Parse()
	if *object == "" {
		return fmt.Errorf("-object is required")
	}

	r, err := parseRole(*role)
	if err != nil {
		return err
	}
	if r != replication.RolePermanent && *parent == "" {
		return fmt.Errorf("role %s requires -parent", *role)
	}
	st, ok := strategy.Presets()[*stratName]
	if !ok {
		return fmt.Errorf("unknown strategy %q (have: %s)", *stratName, presetNames())
	}
	models, err := parseSession(*session)
	if err != nil {
		return err
	}

	ep, err := tcpnet.Listen(*listen)
	if err != nil {
		return err
	}
	defer ep.Close()
	s := store.New(store.Config{
		ID:       ids.StoreID(*storeID),
		Role:     r,
		Endpoint: ep,
	})
	defer s.Close()
	if err := s.Host(store.HostConfig{
		Object:    ids.ObjectID(*object),
		Semantics: webdoc.New(),
		Strat:     st,
		Parent:    *parent,
		Session:   models,
		Subscribe: *parent != "",
	}); err != nil {
		return err
	}
	log.Printf("globed: %s store %d hosting %q at %s (strategy %s)",
		r, *storeID, *object, ep.Addr(), *stratName)
	if *parent != "" {
		log.Printf("globed: subscribed to parent %s", *parent)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			log.Printf("globed: shutting down")
			return nil
		case <-ticker.C:
			if stats, err := s.Stats(ids.ObjectID(*object)); err == nil {
				log.Printf("globed: stats %+v", stats)
			}
		}
	}
}

func parseRole(s string) (replication.Role, error) {
	switch s {
	case "permanent":
		return replication.RolePermanent, nil
	case "mirror", "object-initiated":
		return replication.RoleObjectInitiated, nil
	case "cache", "client-initiated":
		return replication.RoleClientInitiated, nil
	default:
		return 0, fmt.Errorf("unknown role %q", s)
	}
}

func parseSession(s string) ([]coherence.ClientModel, error) {
	if s == "" {
		return nil, nil
	}
	var out []coherence.ClientModel
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "ryw":
			out = append(out, coherence.ReadYourWrites)
		case "mr":
			out = append(out, coherence.MonotonicReads)
		case "mw":
			out = append(out, coherence.MonotonicWrites)
		case "wfr":
			out = append(out, coherence.WritesFollowReads)
		case "":
		default:
			return nil, fmt.Errorf("unknown session model %q (want ryw|mr|mw|wfr)", part)
		}
	}
	return out, nil
}

func presetNames() string {
	ps := strategy.Presets()
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, " | ")
}
