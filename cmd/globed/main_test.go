package main

import (
	"strings"
	"testing"
)

func TestValidateDurabilityRejectsMirrorOnlyDataDir(t *testing.T) {
	m := manifest{
		DataDir: "/var/lib/globe",
		Stores: []storeSpec{
			{Listen: "127.0.0.1:7001", Role: "mirror"},
			{Listen: "127.0.0.1:7002", Role: "cache"},
		},
	}
	err := validateDurability(m)
	if err == nil {
		t.Fatal("data_dir on a mirror/cache-only manifest must be rejected")
	}
	if !strings.Contains(err.Error(), "no permanent store") {
		t.Fatalf("error should name the cause, got: %v", err)
	}
}

func TestValidateDurabilityAcceptsPermanentStore(t *testing.T) {
	m := manifest{
		DataDir: "/var/lib/globe",
		Stores: []storeSpec{
			{Listen: "127.0.0.1:7001", Role: "permanent"},
			{Listen: "127.0.0.1:7002", Role: "mirror"},
		},
	}
	if err := validateDurability(m); err != nil {
		t.Fatalf("manifest with a permanent store rejected: %v", err)
	}
}

func TestValidateDurabilityNoDataDirIsFine(t *testing.T) {
	m := manifest{Stores: []storeSpec{{Listen: "127.0.0.1:7001", Role: "cache"}}}
	if err := validateDurability(m); err != nil {
		t.Fatalf("manifest without data_dir rejected: %v", err)
	}
}
