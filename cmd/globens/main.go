// Command globens is the standalone name server: the networked
// naming/location service daemons register their objects with, clients
// resolve through, and identifier leases come from. Several instances
// replicate their directory by digest anti-entropy and stripe the
// identifier lease space, so any of them can serve any daemon.
//
// Single server:
//
//	globens -listen 127.0.0.1:7100
//
// A replicated pair:
//
//	globens -listen 127.0.0.1:7100 -peers 127.0.0.1:7101 -index 1 -total 2
//	globens -listen 127.0.0.1:7101 -peers 127.0.0.1:7100 -index 2 -total 2
//
// Daemons and clients then run with -nameserver 127.0.0.1:7100 (or a
// comma-separated list for failover).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/webobj"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("globens: %v", err)
	}
}

func run() error {
	var (
		listen = flag.String("listen", "127.0.0.1:7100", "TCP address to listen on")
		peers  = flag.String("peers", "", "comma-separated peer name-server addresses")
		index  = flag.Int("index", 1, "this server's 1-based index in the peer group (lease striping)")
		total  = flag.Int("total", 1, "total servers in the peer group")
		sync   = flag.Duration("sync", 500*time.Millisecond, "peer directory-sync (digest) interval")
		lease  = flag.Duration("lease-ttl", 0, "contact-point lease TTL: registrations from daemons that stop heartbeating expire out of resolution after this long (0 disables)")
	)
	flag.Parse()
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	if *total < len(peerList)+1 {
		return fmt.Errorf("-total %d is smaller than this server plus %d peers", *total, len(peerList))
	}

	ns, err := webobj.NewNameServer(webobj.NewTCPFabric(""), webobj.NameServerConfig{
		Listen:       *listen,
		Peers:        peerList,
		Index:        *index,
		Total:        *total,
		SyncInterval: *sync,
		LeaseTTL:     *lease,
	})
	if err != nil {
		return err
	}
	defer ns.Close()
	log.Printf("globens: name server %d/%d at %s (peers: %s)", *index, *total, ns.Addr(),
		strings.Join(peerList, ", "))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("globens: shutting down")
	return nil
}
