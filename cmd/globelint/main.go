// Command globelint is the repository's domain lint driver: a multichecker
// over the internal/lint analyzers that prove the invariants prose alone
// cannot — zero-copy decode aliasing, event-loop discipline, wire-constant
// symmetry, clock determinism, and WAL crash ordering. CI runs it as a
// blocking job; `make lint` runs the same thing locally.
//
// Usage:
//
//	globelint [flags] [packages]
//
// Packages default to ./... resolved from the module root. Flags:
//
//	-fix    apply suggested fixes in place (clockdet clock rewrites,
//	        aliasretain strings.Clone insertion), then re-report what
//	        remains
//	-only   comma-separated analyzer names to run (default: all)
//	-skip   comma-separated analyzer names to skip
//	-list   print the registered analyzers and exit
//
// Exit status is 1 when findings remain, 2 on a driver error.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/lint/aliasretain"
	"repro/internal/lint/clockdet"
	"repro/internal/lint/lintkit"
	"repro/internal/lint/looponly"
	"repro/internal/lint/walorder"
	"repro/internal/lint/wiresym"
)

// analyzers is the registry, in reporting order.
var analyzers = []*lintkit.Analyzer{
	aliasretain.Analyzer,
	clockdet.Analyzer,
	looponly.Analyzer,
	walorder.Analyzer,
	wiresym.Analyzer,
}

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	only := flag.String("only", "", "comma-separated analyzers to run")
	skip := flag.String("skip", "", "comma-separated analyzers to skip")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "globelint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := lintkit.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "globelint:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	pkgs, err := lintkit.Load(fset, root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "globelint:", err)
		os.Exit(2)
	}

	diags, err := lintkit.RunAnalyzers(fset, pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "globelint:", err)
		os.Exit(2)
	}

	if *fix {
		remaining, err := applyFixes(fset, pkgs, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "globelint:", err)
			os.Exit(2)
		}
		diags = remaining
	}

	for _, d := range diags {
		fmt.Println(lintkit.FormatDiagnostic(fset, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "globelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only, skip string) ([]*lintkit.Analyzer, error) {
	byName := map[string]*lintkit.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	want := map[string]bool{}
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			want[name] = true
		}
	} else {
		for name := range byName {
			want[name] = true
		}
	}
	if skip != "" {
		for _, name := range strings.Split(skip, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
			}
			delete(want, name)
		}
	}
	var out []*lintkit.Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// applyFixes rewrites files carrying suggested fixes and returns the
// findings that had none (they still need a human).
func applyFixes(fset *token.FileSet, pkgs []*lintkit.Package, diags []lintkit.Diagnostic) ([]lintkit.Diagnostic, error) {
	src := map[string][]byte{}
	for _, p := range pkgs {
		for name, content := range p.Src {
			src[name] = content
		}
	}
	var fixable, remaining []lintkit.Diagnostic
	for _, d := range diags {
		if len(d.Fixes) > 0 {
			fixable = append(fixable, d)
		} else {
			remaining = append(remaining, d)
		}
	}
	if len(fixable) == 0 {
		return remaining, nil
	}
	fixed, err := lintkit.ApplyFixes(fset, src, fixable)
	if err != nil {
		return nil, err
	}
	for name, content := range fixed {
		if err := os.WriteFile(name, content, 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("globelint: fixed %s\n", name)
	}
	return remaining, nil
}
