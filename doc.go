// Package repro is a from-scratch Go reproduction of "A Framework for
// Consistent, Replicated Web Objects" (Kermarrec, Kuz, van Steen,
// Tanenbaum; ICDCS 1998) — the Globe project's per-document pluggable
// replication and coherence architecture for the Web.
//
// The public API lives in package webobj; the framework internals are under
// internal/ (coherence models, Table 1 strategies, replication objects,
// store hierarchy, transports, semantics objects, naming, and the
// networked name service nameserv); cmd/ holds the store daemon (globed),
// client (globectl), name server (globens), and experiment runner
// (globebench); examples/ holds five runnable scenarios. bench_test.go in
// this package regenerates every figure and table of the paper as Go
// benchmarks. See README.md, DESIGN.md, and EXPERIMENTS.md.
//
// # One surface from simulation to real TCP
//
// A webobj.System deploys over a pluggable network fabric
// (transport.Fabric): memnet — the in-process simulated network — and
// tcpnet — real TCP — implement the same interface, so identical
// deployment code runs as a single-process simulation or as a
// multi-process production system. Stores in other processes join by
// address (System.AttachServer / AttachObject), which is how the globed
// cache daemon replicates from a permanent-store daemon. Objects carry a
// semantics type (webdoc, kvstore, applog) selected at Publish and checked
// at bind time; clients access them through typed handles (Document, Map,
// Log) sharing one binding core.
//
// # The naming/location subsystem
//
// The paper's binding model (§2) requires a system-wide location service:
// "in order for a process to invoke an object's method, it must first bind
// to that object by contacting it at one of the object's contact points".
// webobj resolves every bind, replica installation, and identifier
// allocation through a Resolver seam. The default is the in-process
// naming.Service (simulations, single-process deployments); the networked
// implementation is internal/nameserv, reached with
// webobj.WithNameServer(addrs...) and served by cmd/globens or an embedded
// webobj.NewNameServer.
//
// A name record carries the object's contact points (addr, store ID, store
// layer) AND its metadata — semantics type name, full replication strategy
// (strategy.Marshal text), and session-model set — so a process binds and
// replicates objects it was never configured for: Replicate fetches the
// record when the object is unknown locally, the typed Open calls
// type-check against the record's semantics before dialling (the wire Sem
// field at the store remains the authority), and AttachObject's manual
// sem/strat mirroring becomes an override rather than a requirement.
// Records are cached client-side with a TTL; a bind that fails at a
// resolved contact point invalidates, re-resolves, and retries once at the
// next replica.
//
// Naming peers replicate the directory with the same digest/anti-entropy
// pattern the replica layer uses for object state: every item (entry
// upsert/tombstone, metadata update, write-sequence floor, lease cursor)
// carries a two-part stamp — a witnessed Lamport time that orders
// conflicting edits (last-writer-wins per key), and the origin's private
// CONTIGUOUS item sequence, which is what makes anti-entropy exact: peers
// advertise per-origin contiguous floors (KindNameDigest) on a jittered
// interval, so a lost push pins the floor and the holder keeps re-shipping
// the tail (KindNameSync, chunked) until the hole fills — a max-based
// vector would jump the hole and hide the loss forever. Identifier
// allocation is leased: daemons draw client/store ID ranges
// (NextClient/NextStore) striped across the peer group, so identities are
// globally unique with no coordination on the allocation path; each
// server's allocation cursor and item counter replicate as directory items,
// and a restarting peer answers StatusRetry (clients fail over and retry)
// until it has recovered them from a peer or a grace period elapses, so a
// restart does not re-issue ranges daemons already hold. The service also
// keeps a replicated per-client write-sequence floor, reported when a
// pinned-identity session closes; binds seed the session's write counter
// from max(bound store's applied vector, floor), closing the
// covered-write-ID reissue a reused identity hit when binding a lagging
// replica.
//
// Daemons are multi-object: globed loads a manifest (stores × objects) or
// accepts the control RPC (KindCtrlRequest served by System.ServeControl,
// driven by globectl's ctl subcommands or webobj.NewControl) to host and
// drop replicas at runtime. A dropped replica unsubscribes from its parent
// (KindUnsubscribe) and deregisters its contact point.
//
// # Wire format
//
// Messages travel as version-prefixed binary frames (internal/msg). Wire
// version 5 (this revision) added the name-service kinds — KindNameRegister,
// KindNameDeregister, KindNameResolve, KindNameLease, KindNameReply,
// KindNameDigest, KindNameSync — and the daemon-control kinds
// (KindCtrlRequest/KindCtrlReply). Version 4 added the KindDigest kind —
// the anti-entropy heartbeat frame, carrying a store's applied vector in
// VVec (see the anti-entropy section below). Version 3 appended the Sem
// field — the
// semantics type name a bind request declares so stores can reject
// mismatched typed handles at bind time. Version 2 made three changes over
// version 1:
//
//   - A new frame kind, KindUpdateBatch, carries N aggregated operation
//     updates in one frame. Lazy flushes, demand replays, and gossip deltas
//     use it; the receiver fans each entry through the same ordering path a
//     standalone KindUpdate takes. A trailing batch section (u16 count +
//     entries) was appended to the frame layout for this.
//   - Encoding is exact-size and poolable: wireSize computes the frame
//     length up front, Encode allocates once, and EncodePooled/Release give
//     transports a zero-allocation steady state. Multicast on both memnet
//     and tcpnet encodes a frame exactly once per fan-out.
//   - DecodeAlias offers a zero-copy decode that aliases the frame for
//     Args/Payload — and, via unsafe.String over the immutable frame, for
//     every string field, so a small-vector frame decodes with a single
//     allocation (the Message itself). Both transports use it: memnet
//     frames are immutable after delivery, and tcpnet readers carve frames
//     out of handoff chunks that are abandoned, never rewritten (see
//     below). Receivers treat Args/Payload as immutable; code that retains
//     a decoded string for the lifetime of a replica (e.g. subscriber
//     addresses) clones it so it does not pin its frame's chunk.
//
// Version-1 frames are rejected with ErrBadVersion. Both ends of every
// deployment ship from this tree, so no cross-version compatibility shim is
// kept; bump wireVersion again on any layout change.
//
// Version vectors inside frames (Message.VVec, Message.Deps, and per-entry
// batch dependencies) use msg.Vec, a small-vector representation: up to
// VecInline entries live in a sorted inline array and decode without
// allocating; larger vectors spill to a map. The wire layout is unchanged —
// Vec is purely an in-memory representation.
//
// # Transport concurrency model
//
// Both transports are built so that N concurrent senders share no exclusive
// lock on the steady-state path.
//
// memnet (simulated network): topology — the endpoint table, link profiles,
// and partitions — sits behind a read-write mutex that sends only
// read-lock. Randomness for loss/jitter/duplication comes from per-endpoint
// RNGs, each seeded deterministically from the network seed and the
// endpoint address, so runs stay reproducible without a shared RNG lock.
// Scheduled deliveries are sharded: each destination endpoint is pinned
// (by address hash) to one of numShards delivery heaps with its own mutex
// and FIFO tiebreak sequence, so senders contend only when targeting the
// same shard. A single scheduler goroutine (the clock driver) sleeps until
// the earliest delivery across shards is due, then drains every due
// delivery; (time, seq) order within a shard preserves FIFO per
// destination, and cross-destination ordering is — as on a real network —
// unspecified.
//
// tcpnet (real TCP): each cached outbound connection carries its own write
// locks, so an endpoint with K peer connections admits K concurrent
// writers. A frame's 4-byte length header and body travel as one gathered
// write (net.Buffers → writev), one syscall per frame instead of two.
// Concurrent writers to the same connection group-commit: every writer
// appends its header+body to the connection's open batch, the first to
// acquire the write lock flushes the whole batch with a single writev, and
// the rest inherit the flush result — back-to-back frames share syscalls
// without a background flusher goroutine, and writeFrame still returns only
// after the caller's bytes are on the socket.
//
// The inbound path mirrors this: each connection's reader carves frame
// bodies out of a 64 KiB handoff chunk and hands them to msg.DecodeAlias
// without copying. A chunk is abandoned when the next frame does not fit
// and lives exactly as long as the messages aliasing it — one allocation
// per ~64 KiB of traffic instead of one body copy per frame
// (BenchmarkTCPInboundAllocs tracks the rate). Frames larger than a chunk
// get a dedicated buffer.
//
// Inbound frames are budgeted per peer: a connection announcing a frame
// larger than the endpoint's budget (tcpnet.ListenLimit /
// webobj.WithMaxInboundFrame / globed -max-frame; absolute cap 16 MiB) is
// dropped after the 4-byte header, before any body allocation — the
// non-loopback hardening ROADMAP called for.
//
// # Relay re-batching invariant
//
// Aggregated KindUpdateBatch frames survive the full root→leaf path: when a
// mid-hierarchy store fans a batch arrival into its ordering engine, every
// update the batch releases — including previously buffered updates it
// unblocks — is collected and relayed to that store's children as one
// KindUpdateBatch frame (one coherence transfer per hop), never as one
// frame per released update. Demands are retried after a bounded delay
// while a gap persists, so a lost batch frame on a quiet object re-requests
// instead of stranding until the next arrival.
//
// # Anti-entropy: digest heartbeats
//
// The paper's UDP configuration (§4.2) recovers lost updates through the
// coherence model: a later arrival exposes the per-client sequence gap and
// the store demands the missing writes. That leaves one window open —
// silent tail loss. If every remaining push for an object is dropped (the
// last flush of a burst, or a partition swallowing everything), no later
// arrival exists, and a replica that nobody reads stays stale indefinitely.
//
// Digest heartbeats close that window. When enabled (replication
// Config.DigestInterval; store Config.DigestInterval;
// webobj.WithDigestInterval / WithStoreDigestInterval; globed -digest),
// every store periodically multicasts its subscribed children one
// KindDigest frame per hosted object carrying its applied version vector —
// a few dozen bytes. A child whose own applied vector does not cover the
// digest has provably missed updates and requests them through the
// existing demand path; a digest arriving while a demand is already
// outstanding is ignored, so heartbeats and the demand-retry timer never
// issue duplicate requests for one gap. A replica behind a healed
// partition therefore converges within about one heartbeat (worst case
// 1.25 intervals: the period is jittered by up to a quarter interval so
// store fleets do not tick in lockstep) with zero foreground traffic.
//
// Heartbeats are off by default: a digest only ever helps liveness, so
// lossless deployments and benchmarks pay nothing. The digest snapshot is
// cached on the store's event loop and invalidated by applies and state
// transfers, so an idle heartbeat re-sends cached bytes rather than
// re-materialising the applied vector.
//
// Subscription is reliable too: the bootstrap KindSubscribeAck doubles as
// the subscribe's acknowledgement; until it arrives the child re-sends on
// a bounded timer (demandRetry cadence), and a digest heard from the
// parent while still unacked triggers an immediate re-subscribe — a lossy
// link can no longer strand a replica outside the children set. Snapshot
// installs (subscribe acks, state replies, full-state updates) discard
// stale payloads and re-apply the update log's tail beyond the snapshot's
// vector, so a reordered or retried snapshot can never roll locally
// applied content back.
//
// The guarantee is proven, not assumed: internal/chaos is a fault-schedule
// convergence harness that runs seeded randomized workloads over a lossy,
// duplicating, partitioned memnet, heals, and asserts every replica
// converges (byte-identical under the sequential model, identical token
// sets under PRAM) and that no session guarantee — RYW, MR, MW, WFR — was
// violated at any point any client observed. The harness is the scenario
// backbone for future fault work; internal/store's digest tests pin the
// acceptance bound (convergence within 2× DigestInterval on memnet and
// tcpnet, demonstrable stall with heartbeats off), and tcpnet gained
// Pause/Resume/AbortConns fault hooks plus a one-shot redial retry so the
// first frame after a reconnect is not burned on a stale connection.
//
// # Durable stores: WAL, snapshot compaction, crash recovery
//
// A permanent store given a data directory (store Config.DataDir;
// webobj.WithDataDir + WithDurability; globed -data-dir/-fsync) makes every
// hosted object durable. The write-ahead log (internal/wal) IS the stamped
// update log: before a write is acknowledged, its stamped update record is
// appended, then its admission-watermark record — strictly in that order.
// The order is load-bearing: a crash between the two leaves an update whose
// admission is re-derived on replay (every durable update implies its own
// admission), whereas the reverse order could ack a retry whose content was
// lost and permanently stall that client's stream under the ordered models.
// Every record is CRC-framed; recovery truncates the log at the first torn
// record (counted in Stats.WALTornTail) rather than refusing to start.
// Each SnapshotEvery records the log is compacted: full semantics state,
// applied vector, admission watermarks, next global sequence, and the
// children set are written to a temp file, fsynced, renamed over the old
// snapshot, and the WAL truncated — crash-safe at every step because
// replaying an already-snapshotted tail is absorbed by engine dedup.
//
// Restart replays snapshot + WAL, then runs recover-then-serve: if the log
// recorded subscribed children, the store demands their update tails and
// answers binds, reads, and writes with StatusRetry until every child
// answers or RecoveryGrace expires — closing the fsync-policy loss window
// from whichever replicas outlived the crash before accepting new work.
// The fsync policy (off / interval / always) trades ack latency against
// the crash-loss window; only "always" makes kill -9 lossless for
// acknowledged writes, and at-most-once admission plus the replicated
// write-sequence floor keep reused client identities exact across the
// restart. The whole cycle is proven over real TCP by the kill -9 chaos
// harness (internal/chaos RunCrash: crash the durable store mid-stream,
// restart from disk on the same address, assert zero acked-write loss,
// convergence, all four session guarantees, and the reused-identity
// floor) and by scripts/smoke_e2e.sh part 3 at the daemon level; the
// control RPC ("globectl ctl stats") exposes WAL size, snapshot vector,
// recovery state, and replay counters at runtime.
//
// # Self-healing: contact leases, re-parenting, client failover
//
// Crash recovery handles the store that comes back; three mechanisms, one
// per layer, handle the one that never does.
//
// At the naming layer, registrations become renewable leases when the name
// server runs with a TTL (nameserv Config.LeaseTTL; globens -lease-ttl).
// Daemons heartbeat their contact points (webobj.WithLeaseRenewal; globed
// -lease-renew, at most a third of the TTL) through a sub-operation of the
// KindNameLease frame; a silent entry is expired into the same tombstone a
// deregistration produces and replicates to naming peers through the
// ordinary two-part-stamp anti-entropy, so a dead contact point drops out
// of resolution everywhere within one lease period. A renewal answering
// zero entries tells the daemon its record lapsed while it was silent (GC
// pause, partition); the System replays its registrations automatically.
//
// At the replica layer, a store whose parent falls permanently silent
// re-parents (replication Config.ResolveParent + ReparentAfter;
// webobj.WithReparenting; globed -reparent-after). The digest heartbeat
// doubles as the parent failure detector: a replica that sees
// ReparentAfter consecutive silent watch periods (1.5x the digest
// interval each) — or exhausts its subscribe retries — re-resolves the
// object through the Resolver seam, picks a live candidate at a strictly
// closer-to-the-root layer (which makes adoption cycle-free by
// construction), runs the ordinary subscribe handshake there, and lets
// the existing snapshot-install + demand path anti-entropy the gap.
// Completed repairs and missed watch periods surface as
// Stats.ReparentsDone and Stats.ParentMissedDigests via the control RPC.
//
// At the binding layer, typed-handle invocations and Open retry with
// jittered exponential backoff (webobj.WithFailover) bounded by attempts
// and a deadline: StatusRetry answers (a recovering store) retry in
// place, transport errors and vanished replicas trigger invalidate,
// re-resolve, and rebind at the next live contact point, and application
// errors never retry. Handles pinned with At() retry in place but never
// migrate. The composed behaviour is proven by the mirror-kill chaos
// schedule (internal/chaos RunReparent: kill the mirror permanently
// mid-stream, assert its cache child re-parents onto the permanent store,
// zero acked-write loss, convergence, all four session guarantees, and a
// negative control that demonstrably stalls with re-parenting off) and by
// scripts/smoke_e2e.sh part 4 over real TCP processes.
//
// # Invariants and static analysis
//
// The protocol rests on invariants that no test exercises directly:
// zero-copy decoded fields must be cloned before outliving their handler
// (PR 1/3's alias contract), replication handlers must never block the
// store's single event-loop goroutine, every wire kind must appear in
// encode, decode, size accounting, and dispatch in lockstep (PR 1's
// exact-size codec), deterministic packages must draw time from the
// injected clock seam (PRs 2-6's simulation and fault harnesses), and a
// WAL admission record must never precede its update record (PR 6's
// crash-ordering rule). internal/lint holds five analyzers — aliasretain,
// looponly, wiresym, clockdet, walorder — that enforce these mechanically;
// cmd/globelint drives them (CI-blocking, `make lint` locally, -fix for
// the mechanical rewrites), and each analyzer's package doc states its
// invariant, its directive grammar, and the PR that introduced the rule.
package repro
