// Package repro is a from-scratch Go reproduction of "A Framework for
// Consistent, Replicated Web Objects" (Kermarrec, Kuz, van Steen,
// Tanenbaum; ICDCS 1998) — the Globe project's per-document pluggable
// replication and coherence architecture for the Web.
//
// The public API lives in package webobj; the framework internals are under
// internal/ (coherence models, Table 1 strategies, replication objects,
// store hierarchy, transports, semantics objects, naming); cmd/ holds the
// store daemon (globed), client (globectl), and experiment runner
// (globebench); examples/ holds five runnable scenarios. bench_test.go in
// this package regenerates every figure and table of the paper as Go
// benchmarks. See README.md, DESIGN.md, and EXPERIMENTS.md.
package repro
