// Package repro is a from-scratch Go reproduction of "A Framework for
// Consistent, Replicated Web Objects" (Kermarrec, Kuz, van Steen,
// Tanenbaum; ICDCS 1998) — the Globe project's per-document pluggable
// replication and coherence architecture for the Web.
//
// The public API lives in package webobj; the framework internals are under
// internal/ (coherence models, Table 1 strategies, replication objects,
// store hierarchy, transports, semantics objects, naming); cmd/ holds the
// store daemon (globed), client (globectl), and experiment runner
// (globebench); examples/ holds five runnable scenarios. bench_test.go in
// this package regenerates every figure and table of the paper as Go
// benchmarks. See README.md, DESIGN.md, and EXPERIMENTS.md.
//
// # Wire format
//
// Messages travel as version-prefixed binary frames (internal/msg). Wire
// version 2 (this revision) made three changes over version 1:
//
//   - A new frame kind, KindUpdateBatch, carries N aggregated operation
//     updates in one frame. Lazy flushes, demand replays, and gossip deltas
//     use it; the receiver fans each entry through the same ordering path a
//     standalone KindUpdate takes. A trailing batch section (u16 count +
//     entries) was appended to the frame layout for this.
//   - Encoding is exact-size and poolable: wireSize computes the frame
//     length up front, Encode allocates once, and EncodePooled/Release give
//     transports a zero-allocation steady state. Multicast on both memnet
//     and tcpnet encodes a frame exactly once per fan-out.
//   - DecodeAlias offers a zero-copy decode that aliases the frame for
//     Args/Payload; memnet uses it (frames are immutable after delivery),
//     tcpnet keeps the copying Decode because it reuses its read buffer.
//
// Version-1 frames are rejected with ErrBadVersion. Both ends of every
// deployment ship from this tree, so no cross-version compatibility shim is
// kept; bump wireVersion again on any layout change.
package repro
