// Package repro is a from-scratch Go reproduction of "A Framework for
// Consistent, Replicated Web Objects" (Kermarrec, Kuz, van Steen,
// Tanenbaum; ICDCS 1998) — the Globe project's per-document pluggable
// replication and coherence architecture for the Web.
//
// The public API lives in package webobj; the framework internals are under
// internal/ (coherence models, Table 1 strategies, replication objects,
// store hierarchy, transports, semantics objects, naming); cmd/ holds the
// store daemon (globed), client (globectl), and experiment runner
// (globebench); examples/ holds five runnable scenarios. bench_test.go in
// this package regenerates every figure and table of the paper as Go
// benchmarks. See README.md, DESIGN.md, and EXPERIMENTS.md.
//
// # Wire format
//
// Messages travel as version-prefixed binary frames (internal/msg). Wire
// version 2 (this revision) made three changes over version 1:
//
//   - A new frame kind, KindUpdateBatch, carries N aggregated operation
//     updates in one frame. Lazy flushes, demand replays, and gossip deltas
//     use it; the receiver fans each entry through the same ordering path a
//     standalone KindUpdate takes. A trailing batch section (u16 count +
//     entries) was appended to the frame layout for this.
//   - Encoding is exact-size and poolable: wireSize computes the frame
//     length up front, Encode allocates once, and EncodePooled/Release give
//     transports a zero-allocation steady state. Multicast on both memnet
//     and tcpnet encodes a frame exactly once per fan-out.
//   - DecodeAlias offers a zero-copy decode that aliases the frame for
//     Args/Payload; memnet uses it (frames are immutable after delivery),
//     tcpnet keeps the copying Decode because it reuses its read buffer.
//
// Version-1 frames are rejected with ErrBadVersion. Both ends of every
// deployment ship from this tree, so no cross-version compatibility shim is
// kept; bump wireVersion again on any layout change.
//
// Version vectors inside frames (Message.VVec, Message.Deps, and per-entry
// batch dependencies) use msg.Vec, a small-vector representation: up to
// VecInline entries live in a sorted inline array and decode without
// allocating; larger vectors spill to a map. The wire layout is unchanged —
// Vec is purely an in-memory representation.
//
// # Transport concurrency model
//
// Both transports are built so that N concurrent senders share no exclusive
// lock on the steady-state path.
//
// memnet (simulated network): topology — the endpoint table, link profiles,
// and partitions — sits behind a read-write mutex that sends only
// read-lock. Randomness for loss/jitter/duplication comes from per-endpoint
// RNGs, each seeded deterministically from the network seed and the
// endpoint address, so runs stay reproducible without a shared RNG lock.
// Scheduled deliveries are sharded: each destination endpoint is pinned
// (by address hash) to one of numShards delivery heaps with its own mutex
// and FIFO tiebreak sequence, so senders contend only when targeting the
// same shard. A single scheduler goroutine (the clock driver) sleeps until
// the earliest delivery across shards is due, then drains every due
// delivery; (time, seq) order within a shard preserves FIFO per
// destination, and cross-destination ordering is — as on a real network —
// unspecified.
//
// tcpnet (real TCP): each cached outbound connection carries its own write
// locks, so an endpoint with K peer connections admits K concurrent
// writers. A frame's 4-byte length header and body travel as one gathered
// write (net.Buffers → writev), one syscall per frame instead of two.
// Concurrent writers to the same connection group-commit: every writer
// appends its header+body to the connection's open batch, the first to
// acquire the write lock flushes the whole batch with a single writev, and
// the rest inherit the flush result — back-to-back frames share syscalls
// without a background flusher goroutine, and writeFrame still returns only
// after the caller's bytes are on the socket.
//
// # Relay re-batching invariant
//
// Aggregated KindUpdateBatch frames survive the full root→leaf path: when a
// mid-hierarchy store fans a batch arrival into its ordering engine, every
// update the batch releases — including previously buffered updates it
// unblocks — is collected and relayed to that store's children as one
// KindUpdateBatch frame (one coherence transfer per hop), never as one
// frame per released update. Demands are retried after a bounded delay
// while a gap persists, so a lost batch frame on a quiet object re-requests
// instead of stranding until the next arrival.
package repro
