// Package repro's root benchmarks regenerate every figure and table of the
// paper (see DESIGN.md §4 and EXPERIMENTS.md): one benchmark per artifact,
// built on the same scenarios as cmd/globebench, plus micro-benchmarks of
// the hot paths (codec, ordering engines). Custom metrics report the
// quantities the paper reasons about: messages, bytes, demand pulls, and
// stale reads per operation.
package repro_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/nameserv"
	"repro/internal/strategy"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/transport/tcpnet"
	"repro/internal/vclock"
	"repro/webobj"
)

// --- micro: wire codec (every remote invocation pays this) -------------------

func BenchmarkMicro_MessageEncode(b *testing.B) {
	m := &msg.Message{
		Kind: msg.KindUpdate, Object: "doc", From: "a", To: "b",
		Write: ids.WiD{Client: 3, Seq: 17},
		VVec:  msg.VecFrom(ids.VersionVec{1: 5, 2: 9, 3: 17}),
		Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 512)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = msg.Encode(m)
	}
}

func BenchmarkMicro_MessageDecode(b *testing.B) {
	wire := msg.Encode(&msg.Message{
		Kind: msg.KindUpdate, Object: "doc", From: "a", To: "b",
		Write: ids.WiD{Client: 3, Seq: 17},
		VVec:  msg.VecFrom(ids.VersionVec{1: 5, 2: 9, 3: 17}),
		Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 512)},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// Pooled encode: the transports' steady-state path — zero allocations once
// the pool is warm.
func BenchmarkMicro_MessageEncodePooled(b *testing.B) {
	m := &msg.Message{
		Kind: msg.KindUpdate, Object: "doc", From: "a", To: "b",
		Write: ids.WiD{Client: 3, Seq: 17},
		VVec:  msg.VecFrom(ids.VersionVec{1: 5, 2: 9, 3: 17}),
		Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 512)},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wb := msg.EncodePooled(m)
		wb.Release()
	}
}

// Zero-copy decode: memnet's delivery path, which aliases the frame
// instead of copying Args/Payload.
func BenchmarkMicro_MessageDecodeAlias(b *testing.B) {
	wire := msg.Encode(&msg.Message{
		Kind: msg.KindUpdate, Object: "doc", From: "a", To: "b",
		Write: ids.WiD{Client: 3, Seq: 17},
		VVec:  msg.VecFrom(ids.VersionVec{1: 5, 2: 9, 3: 17}),
		Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 512)},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.DecodeAlias(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch amortization: the same N updates shipped as N standalone frames vs
// one KindUpdateBatch frame. wireB/update shows the envelope overhead each
// batched update no longer pays.
func BenchmarkMicro_BatchAmortization(b *testing.B) {
	const n = 16
	mkInv := func(i int) msg.Invocation {
		return msg.Invocation{Method: 4, Page: "index.html", Args: []byte(fmt.Sprintf("append-%d", i))}
	}
	b.Run("single-frames", func(b *testing.B) {
		msgs := make([]*msg.Message, n)
		for i := range msgs {
			msgs[i] = &msg.Message{
				Kind: msg.KindUpdate, Object: "doc", From: "store/www", Store: 1,
				Write: ids.WiD{Client: 3, Seq: uint64(i + 1)},
				Inv:   mkInv(i),
			}
		}
		b.ReportAllocs()
		var bytes int
		for i := 0; i < b.N; i++ {
			bytes = 0
			for _, m := range msgs {
				bytes += len(msg.Encode(m))
			}
		}
		b.ReportMetric(float64(bytes)/n, "wireB/update")
		b.ReportMetric(n, "frames/flush")
	})
	b.Run("batch-frame", func(b *testing.B) {
		batch := &msg.Message{Kind: msg.KindUpdateBatch, Object: "doc", From: "store/www", Store: 1}
		for i := 0; i < n; i++ {
			batch.Batch = append(batch.Batch, msg.BatchUpdate{
				Write: ids.WiD{Client: 3, Seq: uint64(i + 1)},
				Inv:   mkInv(i),
			})
		}
		b.ReportAllocs()
		var bytes int
		for i := 0; i < b.N; i++ {
			bytes = len(msg.Encode(batch))
		}
		b.ReportMetric(float64(bytes)/n, "wireB/update")
		b.ReportMetric(1, "frames/flush")
	})
}

// --- micro: ordering engines (per-update coherence cost) ---------------------

func BenchmarkMicro_EngineSubmit(b *testing.B) {
	for _, model := range []coherence.Model{
		coherence.Sequential, coherence.PRAM, coherence.FIFO, coherence.Causal, coherence.Eventual,
	} {
		b.Run(model.String(), func(b *testing.B) {
			eng, err := coherence.NewEngine(model)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				u := &coherence.Update{
					Write:     ids.WiD{Client: 1, Seq: uint64(i + 1)},
					GlobalSeq: uint64(i + 1),
					Stamp:     vclock.Stamp{Time: uint64(i + 1), Client: 1},
					Deps:      vclock.VC{1: uint64(i + 1)},
					Inv:       msg.Invocation{Method: 1, Page: "p"},
				}
				eng.Submit(u)
			}
		})
	}
}

// --- shared scenario helpers --------------------------------------------------

type benchSys struct {
	sys    *webobj.System
	server *webobj.Store
	cache  *webobj.Store
	writer *webobj.Document
	reader *webobj.Document
}

func newBenchSys(b *testing.B, strat webobj.Strategy, session ...webobj.ClientModel) *benchSys {
	b.Helper()
	return newBenchSysSeeded(b, strat, true, session...)
}

// newBenchSysSeeded optionally skips the warm-up write, for benchmarks
// where a different client must be the single registered writer.
func newBenchSysSeeded(b *testing.B, strat webobj.Strategy, seed bool, session ...webobj.ClientModel) *benchSys {
	b.Helper()
	sys := webobj.NewSystemWithNetwork(memnet.WithSeed(1))
	server, err := sys.NewServer("www")
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("bench-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), strat); err != nil {
		b.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(cache, obj, session...); err != nil {
		b.Fatal(err)
	}
	writer, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		b.Fatal(err)
	}
	reader, err := sys.Open(obj, webobj.At(cache), webobj.WithSession(session...))
	if err != nil {
		b.Fatal(err)
	}
	if seed {
		if err := writer.Put("index.html", []byte("<h1>bench</h1>"), "text/html"); err != nil {
			b.Fatal(err)
		}
		if _, err := reader.Get("index.html"); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() {
		writer.Close()
		reader.Close()
		_ = sys.Close()
	})
	return &benchSys{sys: sys, server: server, cache: cache, writer: writer, reader: reader}
}

func reportNet(b *testing.B, sys *webobj.System, ops int) {
	s := sys.Network().Stats()
	if ops > 0 {
		b.ReportMetric(float64(s.Sent)/float64(ops), "msgs/op")
		b.ReportMetric(float64(s.Bytes)/float64(ops), "wireB/op")
	}
}

// --- F1: invocation paths (Figure 1) ------------------------------------------

func BenchmarkFigure1_InvocationPath(b *testing.B) {
	st := strategy.PopularEventPage()
	st.Scope = strategy.ScopeAll
	b.Run("rpc-to-permanent", func(b *testing.B) {
		s := newBenchSys(b, st)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.writer.Get("index.html"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replica-at-cache", func(b *testing.B) {
		s := newBenchSys(b, st)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.reader.Get("index.html"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFigure1_Binding(b *testing.B) {
	st := strategy.PopularEventPage()
	st.Scope = strategy.ScopeAll
	s := newBenchSys(b, st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := s.sys.Open("bench-doc", webobj.At(s.cache))
		if err != nil {
			b.Fatal(err)
		}
		d.Close()
	}
}

// --- F2: store layers (Figure 2) ----------------------------------------------

func BenchmarkFigure2_StoreLayers(b *testing.B) {
	st := strategy.PopularEventPage()
	st.Scope = strategy.ScopeAll
	sys := webobj.NewSystemWithNetwork()
	server, err := sys.NewServer("www")
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("layers-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), st); err != nil {
		b.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(mirror, obj); err != nil {
		b.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", mirror)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		b.Fatal(err)
	}
	seed, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		b.Fatal(err)
	}
	if err := seed.Put("p", []byte("content"), "text/html"); err != nil {
		b.Fatal(err)
	}
	seed.Close()
	b.Cleanup(func() { _ = sys.Close() })

	for _, layer := range []struct {
		name string
		at   *webobj.Store
	}{{"permanent", server}, {"object-initiated", mirror}, {"client-initiated", cache}} {
		b.Run(layer.name, func(b *testing.B) {
			d, err := sys.Open(obj, webobj.At(layer.at))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			if _, err := d.Get("p"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Get("p"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1: parameter sweep (Table 1) ---------------------------------------------

func BenchmarkTable1_ParameterSweep(b *testing.B) {
	combos := []struct {
		name string
		mut  func(*webobj.Strategy)
	}{
		{"update-push-immediate-partial", func(s *webobj.Strategy) {}},
		{"update-push-immediate-full", func(s *webobj.Strategy) { s.CoherenceTransfer = strategy.CoherenceFull }},
		{"update-push-lazy-partial", func(s *webobj.Strategy) { s.Instant = strategy.Lazy; s.LazyInterval = 5 * time.Millisecond }},
		{"invalidate-push-immediate", func(s *webobj.Strategy) { s.Propagation = strategy.PropagateInvalidate }},
		{"update-pull-periodic", func(s *webobj.Strategy) { s.Initiative = strategy.Pull; s.PullInterval = 5 * time.Millisecond }},
	}
	for _, c := range combos {
		b.Run(c.name, func(b *testing.B) {
			st := webobj.Strategy{
				Model:             coherence.PRAM,
				Propagation:       strategy.PropagateUpdate,
				Scope:             strategy.ScopeAll,
				Writers:           strategy.SingleWriter,
				Initiative:        strategy.Push,
				Instant:           strategy.Immediate,
				AccessTransfer:    strategy.TransferPartial,
				CoherenceTransfer: strategy.CoherencePartial,
				ObjectOutdate:     strategy.Demand,
				ClientOutdate:     strategy.Demand,
			}
			c.mut(&st)
			if err := st.Validate(); err != nil {
				b.Fatal(err)
			}
			s := newBenchSys(b, st)
			s.sys.Network().ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// 1 write : 4 reads, the sweep's mixed workload.
				if err := s.writer.Put("index.html", []byte(fmt.Sprintf("v%d", i)), ""); err != nil {
					b.Fatal(err)
				}
				for r := 0; r < 4; r++ {
					if _, err := s.reader.Get("index.html"); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			reportNet(b, s.sys, b.N*5)
			// Batch amortization: how many updates each aggregated flush
			// carried per KindUpdateBatch frame.
			if st, err := s.server.Stats("bench-doc"); err == nil && st.BatchesSent > 0 {
				b.ReportMetric(float64(st.BatchedUpdates)/float64(st.BatchesSent), "ups/batch")
			}
		})
	}
}

// --- T2: conference scenario (Table 2, Figures 3-4) ------------------------------

func BenchmarkTable2_ConferenceScenario(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		session []webobj.ClientModel
	}{
		{"pram-only", nil},
		{"pram+ryw", []webobj.ClientModel{webobj.ReadYourWrites}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// No seed write: the master must be the single registered writer.
			s := newBenchSysSeeded(b, webobj.ConferenceStrategy(5*time.Millisecond), false, cfg.session...)
			master, err := s.sys.Open("bench-doc", webobj.At(s.cache), webobj.WithSession(cfg.session...))
			if err != nil {
				b.Fatal(err)
			}
			defer master.Close()
			b.ResetTimer()
			stale := 0
			for i := 0; i < b.N; i++ {
				if err := master.Append("program", []byte("u")); err != nil {
					b.Fatal(err)
				}
				pg, err := master.Get("program")
				if err != nil {
					b.Fatal(err)
				}
				if pg.Version < uint64(i+1) {
					stale++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stale)/float64(b.N), "staleOwnReads/op")
		})
	}
}

// --- M1: object-based models ------------------------------------------------------

func BenchmarkModels_ObjectBased(b *testing.B) {
	for _, model := range []coherence.Model{
		coherence.Sequential, coherence.PRAM, coherence.FIFO, coherence.Causal, coherence.Eventual,
	} {
		b.Run(model.String(), func(b *testing.B) {
			st := webobj.Strategy{
				Model:             model,
				Propagation:       strategy.PropagateUpdate,
				Scope:             strategy.ScopeAll,
				Writers:           strategy.SingleWriter,
				Initiative:        strategy.Push,
				Instant:           strategy.Immediate,
				AccessTransfer:    strategy.TransferFull,
				CoherenceTransfer: strategy.CoherencePartial,
				ObjectOutdate:     strategy.Demand,
				ClientOutdate:     strategy.Demand,
			}
			if model == coherence.Eventual {
				st.ObjectOutdate = strategy.Wait
			}
			if err := st.Validate(); err != nil {
				b.Fatal(err)
			}
			s := newBenchSys(b, st)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.writer.Put("index.html", []byte(fmt.Sprintf("v%d", i)), ""); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportNet(b, s.sys, b.N)
		})
	}
}

// --- M2: session guarantees --------------------------------------------------------

func BenchmarkModels_SessionGuarantees(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		session []webobj.ClientModel
	}{
		{"none", nil},
		{"ryw", []webobj.ClientModel{webobj.ReadYourWrites}},
		{"mr", []webobj.ClientModel{webobj.MonotonicReads}},
		{"ryw+mr", []webobj.ClientModel{webobj.ReadYourWrites, webobj.MonotonicReads}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// Lazy mirror sync: guarantees must work against a stale store.
			s := newBenchSys(b, webobj.MirroredSiteStrategy(20*time.Millisecond), cfg.session...)
			client, err := s.sys.Open("bench-doc", webobj.At(s.server), webobj.WithSession(cfg.session...))
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Put("p", []byte(fmt.Sprintf("v%d", i)), ""); err != nil {
					b.Fatal(err)
				}
				if err := client.Rebind(s.cache); err != nil {
					b.Fatal(err)
				}
				if _, err := client.Get("p"); err != nil {
					b.Fatal(err)
				}
				if err := client.Rebind(s.server); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- C1: per-object vs uniform -----------------------------------------------------

func BenchmarkClaim_PerObjectVsUniform(b *testing.B) {
	ttl := webobj.Strategy{
		Model: coherence.PRAM, Propagation: strategy.PropagateUpdate,
		Scope: strategy.ScopeAll, Writers: strategy.SingleWriter,
		Initiative: strategy.Pull, Instant: strategy.Immediate,
		PullInterval: 10 * time.Millisecond, AccessTransfer: strategy.TransferPartial,
		CoherenceTransfer: strategy.CoherencePartial,
		ObjectOutdate:     strategy.Wait, ClientOutdate: strategy.Wait,
	}
	validate := ttl
	validate.PullInterval = 0
	validate.ObjectOutdate = strategy.Demand
	validate.ClientOutdate = strategy.Demand
	tailored := strategy.PopularEventPage()
	tailored.Scope = strategy.ScopeAll

	for _, cfg := range []struct {
		name string
		st   webobj.Strategy
	}{{"uniform-ttl", ttl}, {"uniform-validate", validate}, {"tailored-popular-page", tailored}} {
		b.Run(cfg.name, func(b *testing.B) {
			s := newBenchSys(b, cfg.st)
			s.sys.Network().ResetStats()
			stale := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%10 == 0 { // popular page: 10% writes
					if err := s.writer.Put("index.html", []byte(fmt.Sprintf("v%d", i)), ""); err != nil {
						b.Fatal(err)
					}
				}
				pg, err := s.reader.Get("index.html")
				if err != nil {
					b.Fatal(err)
				}
				if pg.Version < uint64(i/10+1) {
					stale++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(stale)/float64(b.N), "staleReads/op")
			reportNet(b, s.sys, b.N)
		})
	}
}

// --- G1: anti-entropy gossip between mirrors -----------------------------------------

// BenchmarkGossip_AntiEntropy measures leaderless mirror synchronisation:
// two peered mirrors under the eventual model, with the second mirror
// partitioned from the permanent store so gossip is its only source of
// updates. Deltas ship as one batch frame per round.
func BenchmarkGossip_AntiEntropy(b *testing.B) {
	sys := webobj.NewSystemWithNetwork(memnet.WithSeed(1))
	server, err := sys.NewServer("www")
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("mirror-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.MirroredSiteStrategy(2*time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	m1, err := sys.NewMirror("m1", server)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(m1, obj); err != nil {
		b.Fatal(err)
	}
	m2, err := sys.NewMirror("m2", server)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(m2, obj); err != nil {
		b.Fatal(err)
	}
	if err := sys.Peer(m1, m2, obj); err != nil {
		b.Fatal(err)
	}
	// After bootstrap, m2 hears nothing from the server: only gossip from
	// m1 can synchronise it.
	sys.Network().Partition("store/www", "store/m2")
	writer, err := sys.Open(obj, webobj.At(m1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { writer.Close(); _ = sys.Close() })
	sys.Network().ResetStats()
	const writesPerRound = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < writesPerRound; j++ {
			if err := writer.Append("log", []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
		want, err := m1.Applied(obj)
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			got, err := m2.Applied(obj)
			if err == nil && got.Covers(want) {
				break
			}
			if time.Now().After(deadline) {
				b.Fatalf("mirror did not converge via gossip")
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	reportNet(b, sys, b.N*writesPerRound)
	if st, err := m1.Stats(obj); err == nil && st.BatchesSent > 0 {
		b.ReportMetric(float64(st.BatchedUpdates)/float64(st.BatchesSent), "ups/batch")
	}
}

// --- P2: transport contention & relay amortization ---------------------------------

// BenchmarkContention_MemnetMulticast drives the simulated network from many
// concurrent sender endpoints, each fanning a small update out to its own
// sinks. With one global network mutex every sender serialises on the RNG +
// delivery heap; with per-endpoint RNGs and sharded delivery queues the
// senders only share the read-locked topology. The link latency exceeds the
// measured window, so the clock driver sleeps and the benchmark isolates the
// send path — the serialisation point under test. ns/op is wall time per
// multicast across all senders.
func BenchmarkContention_MemnetMulticast(b *testing.B) {
	const fanout = 4
	for _, senders := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("senders-%d", senders), func(b *testing.B) {
			n := memnet.New(memnet.WithSeed(1),
				memnet.WithDefaultLink(memnet.LinkProfile{Latency: time.Minute}))
			defer n.Close()
			srcs := make([]transport.Endpoint, senders)
			tos := make([][]string, senders)
			var drain sync.WaitGroup
			for i := 0; i < senders; i++ {
				src, err := n.Endpoint(fmt.Sprintf("src%d", i))
				if err != nil {
					b.Fatal(err)
				}
				srcs[i] = src
				for j := 0; j < fanout; j++ {
					addr := fmt.Sprintf("sink%d-%d", i, j)
					ep, err := n.Endpoint(addr)
					if err != nil {
						b.Fatal(err)
					}
					tos[i] = append(tos[i], addr)
					drain.Add(1)
					go func(ep transport.Endpoint) {
						defer drain.Done()
						for range ep.Recv() {
						}
					}(ep)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < senders; i++ {
				ops := b.N / senders
				if i < b.N%senders {
					ops++
				}
				wg.Add(1)
				go func(i, ops int) {
					defer wg.Done()
					m := &msg.Message{
						Kind: msg.KindUpdate, Object: "doc", From: fmt.Sprintf("src%d", i),
						Write: ids.WiD{Client: ids.ClientID(i + 1), Seq: 1},
						VVec:  msg.VecFrom(msgVVec(i)),
						Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 64)},
					}
					for k := 0; k < ops; k++ {
						if err := srcs[i].Multicast(tos[i], m); err != nil {
							b.Error(err)
							return
						}
					}
				}(i, ops)
			}
			wg.Wait()
			b.StopTimer()
			_ = n.Close() // close inboxes so the drainers exit
			drain.Wait()
		})
	}
}

// BenchmarkContention_TCPConcurrentWriters hammers one tcpnet endpoint from
// concurrent goroutines, each pinned to one of four peer connections. With a
// single endpoint mutex and two conn.Write calls per frame, all writers
// serialise; per-connection locks plus a single writev per frame let the
// four connections proceed independently and back-to-back frames on one
// connection share syscalls.
func BenchmarkContention_TCPConcurrentWriters(b *testing.B) {
	const conns = 4
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers-%d", writers), func(b *testing.B) {
			src, err := tcpnet.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer src.Close()
			addrs := make([]string, 0, conns)
			for i := 0; i < conns; i++ {
				ep, err := tcpnet.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer ep.Close()
				addrs = append(addrs, ep.Addr())
				go func(ep *tcpnet.Endpoint) {
					for range ep.Recv() {
					}
				}(ep)
			}
			m := &msg.Message{
				Kind: msg.KindUpdate, Object: "doc",
				Write: ids.WiD{Client: 1, Seq: 1},
				Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 64)},
			}
			for _, a := range addrs { // warm the connection cache
				if err := src.Send(a, m); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				ops := b.N / writers
				if w < b.N%writers {
					ops++
				}
				wg.Add(1)
				go func(w, ops int) {
					defer wg.Done()
					to := addrs[w%conns]
					for k := 0; k < ops; k++ {
						if err := src.Send(to, m); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, ops)
			}
			wg.Wait()
			b.StopTimer()
		})
	}
}

// BenchmarkRelay_DeepHierarchyBatch measures batch preservation through a
// three-level hierarchy (server → mirror → cache). Each round partitions the
// server from the mirror, performs a burst of writes the mirror misses, then
// heals; the next write exposes the gap, the mirror demands, the server
// replays the burst as one KindUpdateBatch frame, and the mirror relays the
// released updates to the cache. De-batched relaying ships one frame per
// update on the mirror→cache hop; re-batched relaying ships one frame per
// hop. msgs/op counts network frames per written update.
func BenchmarkRelay_DeepHierarchyBatch(b *testing.B) {
	st := webobj.Strategy{
		Model:             coherence.PRAM,
		Propagation:       strategy.PropagateUpdate,
		Scope:             strategy.ScopeAll,
		Writers:           strategy.SingleWriter,
		Initiative:        strategy.Push,
		Instant:           strategy.Immediate,
		AccessTransfer:    strategy.TransferPartial,
		CoherenceTransfer: strategy.CoherencePartial,
		ObjectOutdate:     strategy.Demand,
		ClientOutdate:     strategy.Demand,
	}
	if err := st.Validate(); err != nil {
		b.Fatal(err)
	}
	sys := webobj.NewSystemWithNetwork(memnet.WithSeed(1))
	server, err := sys.NewServer("www")
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("relay-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), st); err != nil {
		b.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(mirror, obj); err != nil {
		b.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", mirror)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		b.Fatal(err)
	}
	writer, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { writer.Close(); _ = sys.Close() })
	if err := writer.Append("log", []byte("seed")); err != nil {
		b.Fatal(err)
	}
	waitCovers(b, sys, cache, obj, server)
	const gap = 16
	sys.Network().ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Network().Partition("store/www", "store/mirror")
		for j := 0; j < gap; j++ {
			if err := writer.Append("log", []byte("x")); err != nil {
				b.Fatal(err)
			}
		}
		sys.Network().Heal("store/www", "store/mirror")
		// The next write exposes the sequence gap at the mirror.
		if err := writer.Append("log", []byte("x")); err != nil {
			b.Fatal(err)
		}
		waitCovers(b, sys, cache, obj, server)
	}
	b.StopTimer()
	reportNet(b, sys, b.N*(gap+1))
	if st, err := mirror.Stats(obj); err == nil && st.BatchesSent > 0 {
		b.ReportMetric(float64(st.BatchedUpdates)/float64(st.BatchesSent), "ups/batch")
	}
}

// msgVVec builds a small distinct version vector per sender.
func msgVVec(i int) ids.VersionVec {
	return ids.VersionVec{1: uint64(i + 1), 2: 9, 3: 17}
}

// waitCovers blocks until dst's applied vector covers src's.
func waitCovers(b *testing.B, sys *webobj.System, dst *webobj.Store, obj webobj.ObjectID, src *webobj.Store) {
	b.Helper()
	want, err := src.Applied(obj)
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := dst.Applied(obj)
		if err == nil && got.Covers(want) {
			return
		}
		if time.Now().After(deadline) {
			b.Fatalf("hierarchy did not converge")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// --- E2E: lossy transport (§4.2) -----------------------------------------------------

func BenchmarkE2E_LossyTransportRecovery(b *testing.B) {
	for _, react := range []strategy.Reaction{strategy.Demand, strategy.Wait} {
		b.Run(react.String(), func(b *testing.B) {
			st := webobj.ConferenceStrategy(3 * time.Millisecond)
			st.ObjectOutdate = react
			s := newBenchSys(b, st)
			s.sys.Network().SetLink("store/www", "store/proxy", memnet.LinkProfile{Loss: 0.3})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.writer.Append("log", []byte("x")); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Under demand the cache converges; under wait it may lag.
			deadline := time.Now().Add(2 * time.Second)
			converged := false
			for time.Now().Before(deadline) {
				pg, err := s.reader.Get("log")
				if err == nil && pg.Version == uint64(b.N) {
					converged = true
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			if converged {
				b.ReportMetric(1, "converged")
			} else {
				b.ReportMetric(0, "converged")
			}
		})
	}
}

// --- fabric end-to-end --------------------------------------------------------

// BenchmarkFabric_EndToEndPutGet measures one full public-API round trip —
// typed-handle Put (write ordered and applied at the store) followed by Get
// — through the identical deployment code over each fabric. It is the
// webobj-level end-to-end number the BENCH_<n>.json trajectory tracks: any
// regression anywhere on the handle → proxy → transport → store event loop
// → control path shows up here.
func BenchmarkFabric_EndToEndPutGet(b *testing.B) {
	for _, fab := range []struct {
		name string
		make func() webobj.Fabric
	}{
		{"memnet", func() webobj.Fabric { return webobj.NewMemFabric(memnet.WithSeed(1)) }},
		{"tcpnet", func() webobj.Fabric { return webobj.NewTCPFabric("") }},
	} {
		b.Run("fabric="+fab.name, func(b *testing.B) {
			sys := webobj.NewSystem(webobj.WithFabric(fab.make()))
			defer sys.Close()
			server, err := sys.NewServer("www")
			if err != nil {
				b.Fatal(err)
			}
			const obj = webobj.ObjectID("bench-doc")
			if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
				b.Fatal(err)
			}
			doc, err := sys.Open(obj, webobj.At(server))
			if err != nil {
				b.Fatal(err)
			}
			defer doc.Close()
			content := []byte("<h1>bench</h1>")
			if err := doc.Put("index.html", content, "text/html"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := doc.Put("index.html", content, "text/html"); err != nil {
					b.Fatal(err)
				}
				if _, err := doc.Get("index.html"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- digest heartbeats (anti-entropy) -----------------------------------------

// BenchmarkDigest_IdleNetworkOverhead measures what anti-entropy heartbeats
// cost when nothing is happening: a three-layer hierarchy (permanent →
// mirror → cache) sits idle for a fixed window and the benchmark reports
// the wire byte and digest-frame rate. digest=off is the zero baseline —
// heartbeats are opt-in precisely so quiet deployments pay nothing.
func BenchmarkDigest_IdleNetworkOverhead(b *testing.B) {
	for _, interval := range []time.Duration{0, 25 * time.Millisecond} {
		name := "digest=off"
		if interval > 0 {
			name = "digest=" + interval.String()
		}
		b.Run(name, func(b *testing.B) {
			sys := webobj.NewSystem(
				webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(1))),
				webobj.WithDigestInterval(interval),
			)
			defer sys.Close()
			server, err := sys.NewServer("www")
			if err != nil {
				b.Fatal(err)
			}
			const obj = webobj.ObjectID("idle-doc")
			if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
				b.Fatal(err)
			}
			mirror, err := sys.NewMirror("mirror", server)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Replicate(mirror, obj); err != nil {
				b.Fatal(err)
			}
			cache, err := sys.NewCache("proxy", mirror)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Replicate(cache, obj); err != nil {
				b.Fatal(err)
			}
			doc, err := sys.Open(obj, webobj.At(server))
			if err != nil {
				b.Fatal(err)
			}
			defer doc.Close()
			if err := doc.Put("index.html", []byte("<h1>idle</h1>"), "text/html"); err != nil {
				b.Fatal(err)
			}
			time.Sleep(50 * time.Millisecond) // let dissemination settle
			net := sys.Network()
			net.ResetStats()
			const window = 250 * time.Millisecond
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				time.Sleep(window) // the object is completely idle
			}
			b.StopTimer()
			s := net.Stats()
			secs := (time.Duration(b.N) * window).Seconds()
			b.ReportMetric(float64(s.Bytes)/secs, "idleB/sec")
			b.ReportMetric(float64(s.ByKind[msg.KindDigest])/secs, "digests/sec")
		})
	}
}

// BenchmarkDigest_ConvergenceAfterHeal measures the latency the heartbeat
// bounds: each iteration partitions the cache from its server, writes behind
// its back (the pushes are lost in the partition), heals, and times how long
// the replica needs — with zero foreground traffic — until its applied
// vector covers the stranded write again. The heartbeat interval is 25ms, so
// the protocol's promise is convergence in ≤ ~31ms plus a demand round trip.
func BenchmarkDigest_ConvergenceAfterHeal(b *testing.B) {
	const interval = 25 * time.Millisecond
	sys := webobj.NewSystem(
		webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(1))),
		webobj.WithDigestInterval(interval),
	)
	defer sys.Close()
	server, err := sys.NewServer("www")
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("heal-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(2*time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		b.Fatal(err)
	}
	doc, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		b.Fatal(err)
	}
	defer doc.Close()
	cid := doc.Client()
	net := sys.Network()

	waitCovered := func(seq uint64) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, err := cache.Applied(obj)
			if err != nil {
				b.Fatal(err)
			}
			if v[cid] >= seq {
				return
			}
			if time.Now().After(deadline) {
				b.Fatalf("cache never covered write %d", seq)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
	if err := doc.Append("log", []byte("x")); err != nil {
		b.Fatal(err)
	}
	waitCovered(1)

	var total time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Partition("store/www", "store/proxy")
		if err := doc.Append("log", []byte("x")); err != nil {
			b.Fatal(err)
		}
		time.Sleep(6 * time.Millisecond) // the lazy flush ships into the void
		net.Heal("store/www", "store/proxy")
		start := time.Now()
		waitCovered(uint64(i + 2))
		total += time.Since(start)
	}
	b.StopTimer()
	b.ReportMetric(float64(total.Microseconds())/float64(b.N)/1000, "convergeMs")
}

// --- name service: resolve/bind latency and directory-sync overhead -----------

// nameBenchSystem builds a memnet deployment whose System resolves through
// a real name-service client (server and client share the fabric), with one
// published object.
func nameBenchSystem(b *testing.B, ttl time.Duration) (*webobj.System, webobj.ObjectID) {
	b.Helper()
	net := memnet.New(memnet.WithSeed(1))
	srv, err := nameserv.NewServer(nameserv.Config{Fabric: net, Name: "ns", SyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	client := nameserv.NewClient(nameserv.ClientConfig{
		Fabric: net, Name: "nsc", Servers: []string{srv.Addr()}, CacheTTL: ttl,
	})
	sys := webobj.NewSystem(webobj.WithFabric(net), webobj.WithResolver(client))
	b.Cleanup(func() {
		_ = sys.Close() // closes the resolver and the shared fabric
		_ = srv.Close()
	})
	server, err := sys.NewServer("www")
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("bench-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		b.Fatal(err)
	}
	doc, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		b.Fatal(err)
	}
	if err := doc.Put("index.html", []byte("x"), "text/html"); err != nil {
		b.Fatal(err)
	}
	doc.Close()
	return sys, obj
}

// BenchmarkName_Resolve measures one record resolution through the
// name-service client: cold = an RPC to the name server per call (cache
// disabled), cached = served from the client cache within its TTL.
func BenchmarkName_Resolve(b *testing.B) {
	for _, mode := range []struct {
		name string
		ttl  time.Duration
	}{{"lookup=cold", -1}, {"lookup=cached", time.Hour}} {
		b.Run(mode.name, func(b *testing.B) {
			sys, obj := nameBenchSystem(b, mode.ttl)
			if _, err := sys.ResolveName(obj); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.ResolveName(obj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkName_OpenByName measures the full client entry path through the
// naming subsystem: resolve the record, pick a replica, bind a typed handle
// (semantics-checked), close. Cold re-resolves per open; cached rides the
// record cache — the cost a name-served deployment pays over a hardwired
// store address.
func BenchmarkName_OpenByName(b *testing.B) {
	for _, mode := range []struct {
		name string
		ttl  time.Duration
	}{{"lookup=cold", -1}, {"lookup=cached", time.Hour}} {
		b.Run(mode.name, func(b *testing.B) {
			sys, obj := nameBenchSystem(b, mode.ttl)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				doc, err := sys.Open(obj)
				if err != nil {
					b.Fatal(err)
				}
				doc.Close()
			}
		})
	}
}

// BenchmarkName_DirectorySyncIdle measures the steady-state cost of
// directory anti-entropy between two naming peers holding a populated
// directory with nothing changing: bytes/sec and digest frames/sec on an
// idle deployment (the naming analogue of Digest_IdleNetworkOverhead).
func BenchmarkName_DirectorySyncIdle(b *testing.B) {
	net := memnet.New(memnet.WithSeed(1))
	defer net.Close()
	const interval = 25 * time.Millisecond
	s1, err := nameserv.NewServer(nameserv.Config{
		Fabric: net, Name: "ns1", Index: 1, Total: 2, Peers: []string{"ns2"}, SyncInterval: interval,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s1.Close()
	s2, err := nameserv.NewServer(nameserv.Config{
		Fabric: net, Name: "ns2", Index: 2, Total: 2, Peers: []string{"ns1"}, SyncInterval: interval,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s2.Close()
	client := nameserv.NewClient(nameserv.ClientConfig{Fabric: net, Name: "c", Servers: []string{s1.Addr()}})
	defer client.Close()
	for i := 0; i < 50; i++ {
		obj := ids.ObjectID(fmt.Sprintf("obj-%d", i))
		err := client.Register(obj, webobj.NameEntry{Addr: fmt.Sprintf("store-%d", i), Store: ids.StoreID(i + 1), Role: 1},
			webobj.NameMeta{Sem: "webdoc"})
		if err != nil {
			b.Fatal(err)
		}
	}
	time.Sleep(2 * interval) // let the directories converge
	net.ResetStats()
	const window = 250 * time.Millisecond
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		time.Sleep(window) // the directory is completely idle
	}
	b.StopTimer()
	s := net.Stats()
	secs := (time.Duration(b.N) * window).Seconds()
	b.ReportMetric(float64(s.Bytes)/secs, "idleB/sec")
	b.ReportMetric(float64(s.ByKind[msg.KindNameDigest])/secs, "digests/sec")
	b.ReportMetric(float64(s.ByKind[msg.KindNameSync])/secs, "syncs/sec")
}

// --- durable stores (WAL + recovery) ------------------------------------------

// BenchmarkDurable_Put prices the write-ahead log: one full public-API Put
// through the identical memnet deployment with durability off (the memory
// baseline every earlier BENCH tracked as the e2e number), WAL enabled at
// each fsync policy. fsync=off is the pure serialization overhead (append to
// the page cache before ack), fsync=interval adds the background flusher,
// fsync=always pays one fdatasync per acknowledged write — the policy under
// which kill -9 cannot lose an acked write, and the cost the README's
// deployment section quotes.
func BenchmarkDurable_Put(b *testing.B) {
	cases := []struct {
		name    string
		durable bool
		fsync   webobj.FsyncPolicy
	}{
		{"durability=off", false, webobj.FsyncOff},
		{"fsync=off", true, webobj.FsyncOff},
		{"fsync=interval", true, webobj.FsyncInterval},
		{"fsync=always", true, webobj.FsyncAlways},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opts := []webobj.SystemOption{webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(1)))}
			if tc.durable {
				opts = append(opts,
					webobj.WithDataDir(b.TempDir()),
					webobj.WithDurability(webobj.Durability{Fsync: tc.fsync}))
			}
			sys := webobj.NewSystem(opts...)
			defer sys.Close()
			server, err := sys.NewServer("www", webobj.WithStoreID(1))
			if err != nil {
				b.Fatal(err)
			}
			const obj = webobj.ObjectID("bench-durable")
			if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
				b.Fatal(err)
			}
			doc, err := sys.Open(obj, webobj.At(server))
			if err != nil {
				b.Fatal(err)
			}
			defer doc.Close()
			content := []byte("<h1>durable bench</h1>")
			if err := doc.Put("index.html", content, "text/html"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := doc.Put("index.html", content, "text/html"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDurable_PutConcurrent prices the fsync=always policy under
// concurrent writers — the case group commit exists for. The sequential
// benchmark above pays one fdatasync per write by construction; here W
// clients write in parallel against one durable store, the store's event
// loop drains their writes in batches, and a single deferred barrier
// covers every ack in the batch. The per-write cost should fall well below
// the sequential fsync=always number as W grows; the groupCommits/op
// metric reports how many barriers actually covered more than one ack.
func BenchmarkDurable_PutConcurrent(b *testing.B) {
	for _, writers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			sys := webobj.NewSystem(
				webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(1))),
				webobj.WithDataDir(b.TempDir()),
				webobj.WithDurability(webobj.Durability{Fsync: webobj.FsyncAlways}),
			)
			defer sys.Close()
			server, err := sys.NewServer("www", webobj.WithStoreID(1))
			if err != nil {
				b.Fatal(err)
			}
			const obj = webobj.ObjectID("bench-durable-mw")
			// Forum: the multi-writer Table 1 strategy (causal, immediate
			// push) — the conference page is single-writer by design.
			if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.StrategyPresets()["forum"]); err != nil {
				b.Fatal(err)
			}
			docs := make([]*webobj.Document, writers)
			for w := range docs {
				doc, err := sys.Open(obj, webobj.At(server), webobj.AsClient(uint32(5000+w)))
				if err != nil {
					b.Fatal(err)
				}
				defer doc.Close()
				docs[w] = doc
			}
			content := []byte("<h1>durable bench</h1>")
			before, err := server.Stats(obj)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(doc *webobj.Document, page string) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if err := doc.Put(page, content, "text/html"); err != nil {
							b.Error(err)
							return
						}
					}
				}(docs[w], fmt.Sprintf("pg-%d.html", w))
			}
			wg.Wait()
			b.StopTimer()
			after, err := server.Stats(obj)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(after.GroupCommits-before.GroupCommits)/float64(b.N), "groupCommits/op")
		})
	}
}

// BenchmarkDurable_Recovery measures restart recovery: a durable store's
// WAL is seeded with a fixed update tail once, then each iteration opens a
// fresh system over the same data dir and times Publish — which replays
// snapshot + WAL before the object serves. This is the downtime a crashed
// daemon adds to its restart, the second number the README's deployment
// section quotes.
func BenchmarkDurable_Recovery(b *testing.B) {
	const replayed = 512 // WAL update records replayed per recovery
	dir := b.TempDir()
	seed := webobj.NewSystem(
		webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(1))),
		webobj.WithDataDir(dir),
		// SnapshotEvery > the seeded tail keeps compaction out of the way:
		// every iteration must replay all `replayed` records, not a snapshot.
		webobj.WithDurability(webobj.Durability{Fsync: webobj.FsyncOff, SnapshotEvery: 4 * replayed}),
	)
	server, err := seed.NewServer("www", webobj.WithStoreID(1))
	if err != nil {
		b.Fatal(err)
	}
	const obj = webobj.ObjectID("bench-recovery")
	if err := seed.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		b.Fatal(err)
	}
	doc, err := seed.Open(obj, webobj.At(server))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < replayed; i++ {
		if err := doc.Append("log.html", []byte("x;")); err != nil {
			b.Fatal(err)
		}
	}
	doc.Close()
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := webobj.NewSystem(
			webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(1))),
			webobj.WithDataDir(dir),
			webobj.WithDurability(webobj.Durability{Fsync: webobj.FsyncOff, SnapshotEvery: 4 * replayed}),
		)
		sv, err := sys.NewServer("www", webobj.WithStoreID(1))
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Publish(sv, obj, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sys.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(replayed, "ups_replay")
}

// BenchmarkContention_MemnetDelivery measures end-to-end simulated delivery
// throughput — enqueue, schedule, decode, inbox handoff — under both drain
// modes: the default single scheduler goroutine (deterministic seeded
// order) and WithParallelDelivery's per-shard drainers, where the decode of
// frames bound for different destination shards proceeds concurrently. On a
// single-vCPU host the two modes tie (the parallel win needs real cores);
// at GOMAXPROCS>1 the parallel mode is the row to watch.
func BenchmarkContention_MemnetDelivery(b *testing.B) {
	const senders, receivers = 4, 16
	for _, mode := range []string{"deterministic", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			opts := []memnet.Option{memnet.WithSeed(1)}
			if mode == "parallel" {
				opts = append(opts, memnet.WithParallelDelivery())
			}
			n := memnet.New(opts...)
			defer n.Close()
			srcs := make([]transport.Endpoint, senders)
			for i := range srcs {
				ep, err := n.Endpoint(fmt.Sprintf("src%d", i))
				if err != nil {
					b.Fatal(err)
				}
				srcs[i] = ep
			}
			total := int64(b.N)
			var delivered atomic.Int64
			done := make(chan struct{})
			var drain sync.WaitGroup
			dsts := make([]string, receivers)
			for j := 0; j < receivers; j++ {
				dsts[j] = fmt.Sprintf("sink%d", j)
				ep, err := n.Endpoint(dsts[j])
				if err != nil {
					b.Fatal(err)
				}
				drain.Add(1)
				go func(ep transport.Endpoint) {
					defer drain.Done()
					for range ep.Recv() {
						if delivered.Add(1) == total {
							close(done)
						}
					}
				}(ep)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < senders; i++ {
				ops := b.N / senders
				if i < b.N%senders {
					ops++
				}
				wg.Add(1)
				go func(i, ops int) {
					defer wg.Done()
					m := &msg.Message{
						Kind: msg.KindUpdate, Object: "doc",
						Write: ids.WiD{Client: ids.ClientID(i + 1), Seq: 1},
						VVec:  msg.VecFrom(msgVVec(i)),
						Inv:   msg.Invocation{Method: 4, Page: "index.html", Args: make([]byte, 64)},
					}
					for k := 0; k < ops; k++ {
						if err := srcs[i].Send(dsts[(i+k)%receivers], m); err != nil {
							b.Error(err)
							return
						}
					}
				}(i, ops)
			}
			wg.Wait()
			<-done // all b.N frames decoded and landed in inboxes
			b.StopTimer()
			_ = n.Close()
			drain.Wait()
		})
	}
}
