package webobj

import (
	"repro/internal/semantics"
	"repro/internal/semantics/applog"
	"repro/internal/semantics/kvstore"
	"repro/internal/semantics/webdoc"
)

// Semantics selects the semantics type of a distributed object: what state
// it holds and which methods it offers. The framework replicates any
// semantics type under any strategy — the paper's separation between the
// semantics sub-object and the replication machinery around it. Publish
// takes a selector; each selector has a matching typed Open (WebDoc →
// OpenDocument, KV → OpenMap, AppLog → OpenLog), and binds are type-checked
// at the store, so a client holding the wrong handle fails fast.
type Semantics struct {
	name    string
	factory semantics.Factory
}

// Name returns the semantics type name ("webdoc", "kvstore", "applog").
func (s Semantics) Name() string { return s.name }

// valid reports whether the selector was produced by one of the
// constructors (the zero Semantics is unusable).
func (s Semantics) valid() bool { return s.factory != nil }

// WebDoc is a multi-page Web document (the paper's main subject): pages are
// put, appended to, deleted, and listed. Open with OpenDocument.
func WebDoc() Semantics {
	return Semantics{name: "webdoc", factory: func() semantics.Object { return webdoc.New() }}
}

// KV is a key-value map (the paper's shared bibliographic-database example,
// §3.2.1). Open with OpenMap.
func KV() Semantics {
	return Semantics{name: "kvstore", factory: func() semantics.Object { return kvstore.New() }}
}

// AppLog is an append-only log (the paper's Web-forum example, §3.2.1 — the
// workload causal coherence serves). Open with OpenLog.
func AppLog() Semantics {
	return Semantics{name: "applog", factory: func() semantics.Object { return applog.New() }}
}
