package webobj

import (
	"time"

	"repro/internal/nameserv"
)

// NameServerConfig configures an embedded name server.
type NameServerConfig struct {
	// Listen pins the server's address on a TCP fabric ("host:port"); on a
	// memnet fabric it is the simulated address verbatim. Empty listens on
	// an ephemeral port ("ns" on memnet).
	Listen string
	// Peers lists the other name servers' addresses; the directory
	// replicates between peers by digest anti-entropy.
	Peers []string
	// Index/Total place this server in the peer group (1-based) for
	// identifier-lease striping: server i of N allocates disjoint ranges
	// without coordinating. Zero values mean a single server.
	Index, Total int
	// SyncInterval is the peer digest period (default 500ms).
	SyncInterval time.Duration
	// LeaseTTL turns registrations into renewable liveness leases: a
	// contact point whose daemon stops heartbeating (System option
	// WithLeaseRenewal) is expired out of resolution after this long.
	// Zero disables expiry (registrations live until deregistered).
	LeaseTTL time.Duration
}

// NameServer is a running naming/location service instance. Deployments
// either run it standalone (cmd/globens) or embed one next to a daemon;
// daemons and clients reach it via WithNameServer(addr).
type NameServer struct {
	srv *nameserv.Server
	// ownFabric is closed with the server when the caller handed ownership
	// over (NewNameServer documents that it does).
	ownFabric Fabric
}

// NewNameServer starts a name server over its own fabric. The server takes
// ownership of the fabric: Close closes both. Do not share a System's
// fabric with an embedded name server — give it its own (they are cheap).
func NewNameServer(f Fabric, cfg NameServerConfig) (*NameServer, error) {
	name := "ns"
	if cfg.Listen != "" {
		name = "ns/" + cfg.Listen
	}
	srv, err := nameserv.NewServer(nameserv.Config{
		Fabric:       f,
		Name:         name,
		Index:        cfg.Index,
		Total:        cfg.Total,
		Peers:        cfg.Peers,
		SyncInterval: cfg.SyncInterval,
		LeaseTTL:     cfg.LeaseTTL,
	})
	if err != nil {
		return nil, err
	}
	return &NameServer{srv: srv, ownFabric: f}, nil
}

// Addr returns the server's address — what daemons pass to WithNameServer.
func (n *NameServer) Addr() string { return n.srv.Addr() }

// Close stops the server and its fabric.
func (n *NameServer) Close() error {
	err := n.srv.Close()
	if n.ownFabric != nil {
		if ferr := n.ownFabric.Close(); err == nil {
			err = ferr
		}
	}
	return err
}
