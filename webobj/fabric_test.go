package webobj_test

import (
	"fmt"
	"testing"
	"time"

	"repro/webobj"
)

// waitCovers blocks until at's applied vector for object covers from's, so
// scenario results do not depend on fabric timing.
func waitCovers(t *testing.T, from, at *webobj.Store, object webobj.ObjectID) {
	t.Helper()
	want, err := from.Applied(object)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := at.Applied(object)
		if err == nil && got.Covers(want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s did not converge: have %v want %v", at.Name(), got, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// scenarioResult is everything the scenario observed, in comparable form.
type scenarioResult struct {
	pages map[string]string
	list  []string
	keys  []string
	vals  map[string]string
	log   []string
}

// runScenario drives one fixed deployment script — a Web server with a
// proxy cache, one webdoc, one kv map, one applog — over the given fabric
// and returns what a reader at the cache observes once converged. The
// script only touches the public API, so the identical code runs over the
// simulated network and over real TCP.
func runScenario(t *testing.T, fabric webobj.Fabric) scenarioResult {
	t.Helper()
	sys := webobj.NewSystem(webobj.WithFabric(fabric))
	t.Cleanup(func() { _ = sys.Close() })

	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}

	const doc = webobj.ObjectID("scenario-doc")
	const kv = webobj.ObjectID("scenario-kv")
	const alog = webobj.ObjectID("scenario-log")
	if err := sys.Publish(server, doc, webobj.WebDoc(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, kv, webobj.KV(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, alog, webobj.AppLog(), webobj.ForumStrategy()); err != nil {
		t.Fatal(err)
	}
	for _, obj := range []webobj.ObjectID{doc, kv, alog} {
		if err := sys.Replicate(cache, obj); err != nil {
			t.Fatal(err)
		}
	}

	// One writer per object, at the server.
	w, err := sys.OpenDocument(doc, webobj.At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Put("index.html", []byte("<h1>home</h1>"), "text/html"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append("log.html", []byte(fmt.Sprintf("<li>%d</li>", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Put("doomed.html", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete("doomed.html"); err != nil {
		t.Fatal(err)
	}

	mw, err := sys.OpenMap(kv, webobj.At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer mw.Close()
	for i := 0; i < 3; i++ {
		if err := mw.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Delete("key-1"); err != nil {
		t.Fatal(err)
	}

	lw, err := sys.OpenLog(alog, webobj.At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Close()
	for i := 0; i < 3; i++ {
		if err := lw.Append([]byte(fmt.Sprintf("entry-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	for _, obj := range []webobj.ObjectID{doc, kv, alog} {
		waitCovers(t, server, cache, obj)
	}

	// A reader at the cache observes the converged state.
	res := scenarioResult{pages: make(map[string]string), vals: make(map[string]string)}
	r, err := sys.OpenDocument(doc, webobj.At(cache))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if res.list, err = r.Pages(); err != nil {
		t.Fatal(err)
	}
	for _, p := range res.list {
		pg, err := r.Get(p)
		if err != nil {
			t.Fatal(err)
		}
		res.pages[p] = fmt.Sprintf("v%d:%s", pg.Version, pg.Content)
	}

	mr, err := sys.OpenMap(kv, webobj.At(cache))
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Close()
	if res.keys, err = mr.Keys(); err != nil {
		t.Fatal(err)
	}
	for _, k := range res.keys {
		v, err := mr.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		res.vals[k] = string(v)
	}

	lr, err := sys.OpenLog(alog, webobj.At(cache))
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	entries, err := lr.Suffix(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		res.log = append(res.log, string(e))
	}
	return res
}

// TestScenarioIdenticalAcrossFabrics is the acceptance test of the fabric
// redesign: the same scenario script produces identical observable state
// whether the System deploys over the in-process simulated network or over
// real TCP.
func TestScenarioIdenticalAcrossFabrics(t *testing.T) {
	mem := runScenario(t, webobj.NewMemFabric())
	tcp := runScenario(t, webobj.NewTCPFabric(""))

	if fmt.Sprintf("%v", mem.list) != fmt.Sprintf("%v", tcp.list) {
		t.Fatalf("page lists differ: memnet %v, tcpnet %v", mem.list, tcp.list)
	}
	for p, want := range mem.pages {
		if got := tcp.pages[p]; got != want {
			t.Fatalf("page %q differs: memnet %q, tcpnet %q", p, want, got)
		}
	}
	if fmt.Sprintf("%v", mem.keys) != fmt.Sprintf("%v", tcp.keys) {
		t.Fatalf("key sets differ: memnet %v, tcpnet %v", mem.keys, tcp.keys)
	}
	for k, want := range mem.vals {
		if got := tcp.vals[k]; got != want {
			t.Fatalf("key %q differs: memnet %q, tcpnet %q", k, want, got)
		}
	}
	if fmt.Sprintf("%v", mem.log) != fmt.Sprintf("%v", tcp.log) {
		t.Fatalf("logs differ: memnet %v, tcpnet %v", mem.log, tcp.log)
	}
	// The scenario actually did something.
	if len(mem.pages) != 2 || len(mem.keys) != 2 || len(mem.log) != 3 {
		t.Fatalf("unexpected scenario shape: %+v", mem)
	}
}

// TestAttachRemoteStoreOverTCP plays the two-process deployment inside one
// test: a "daemon" System publishes a document over its own TCP fabric, and
// a second System — sharing nothing with the first but the address —
// attaches the remote permanent store, replicates the object at a local
// cache daemon, and serves it to a client.
func TestAttachRemoteStoreOverTCP(t *testing.T) {
	// Process A: permanent store.
	sysA := webobj.NewSystem(webobj.WithFabric(webobj.NewTCPFabric("")))
	t.Cleanup(func() { _ = sysA.Close() })
	server, err := sysA.NewServer("www", webobj.WithStoreID(1))
	if err != nil {
		t.Fatal(err)
	}
	const doc = webobj.ObjectID("remote-doc")
	if err := sysA.Publish(server, doc, webobj.WebDoc(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	wr, err := sysA.OpenDocument(doc, webobj.At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer wr.Close()
	if err := wr.Put("index.html", []byte("served across processes"), "text/html"); err != nil {
		t.Fatal(err)
	}

	// Process B: cache daemon attaching to A by address only.
	sysB := webobj.NewSystem(webobj.WithFabric(webobj.NewTCPFabric("")))
	t.Cleanup(func() { _ = sysB.Close() })
	parent, err := sysB.AttachServer(server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !parent.Remote() {
		t.Fatalf("attached store not remote")
	}
	if _, err := parent.Applied(doc); err != webobj.ErrRemoteStore {
		t.Fatalf("Applied on remote store: %v", err)
	}
	if err := sysB.AttachObject(parent, doc, webobj.WebDoc(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cache, err := sysB.NewCache("cache-daemon", parent, webobj.WithStoreID(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sysB.Replicate(cache, doc, webobj.ReadYourWrites); err != nil {
		t.Fatal(err)
	}
	waitCovers(t, server, cache, doc)

	// A client of process B reads the page from the local cache; without
	// At(...) the cache (lowest layer) is chosen over the attached remote
	// permanent store.
	rd, err := sysB.OpenDocument(doc)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.StoreAddr() != cache.Addr() {
		t.Fatalf("client bound %s, want the cache %s", rd.StoreAddr(), cache.Addr())
	}
	pg, err := rd.Get("index.html")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "served across processes" {
		t.Fatalf("page = %q", pg.Content)
	}
}

// TestTypedHandleMismatch: opening an object with the wrong typed handle
// fails — locally when the system knows the object, and at bind time (the
// store-side semantics check) when it does not.
func TestTypedHandleMismatch(t *testing.T) {
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "biblio", webobj.KV(), webobj.ForumStrategy()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OpenDocument("biblio"); err == nil {
		t.Fatalf("webdoc open of kv object accepted locally")
	}

	// A second system over TCP knows nothing about the object locally; the
	// store's bind-time check is what rejects the wrong handle.
	sysTCP := webobj.NewSystem(webobj.WithFabric(webobj.NewTCPFabric("")))
	t.Cleanup(func() { _ = sysTCP.Close() })
	srv, err := sysTCP.NewServer("kv-srv")
	if err != nil {
		t.Fatal(err)
	}
	if err := sysTCP.Publish(srv, "biblio", webobj.KV(), webobj.ForumStrategy()); err != nil {
		t.Fatal(err)
	}
	blind := webobj.NewSystem(webobj.WithFabric(webobj.NewTCPFabric("")))
	t.Cleanup(func() { _ = blind.Close() })
	remote, err := blind.AttachServer(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blind.OpenDocument("biblio", webobj.At(remote)); err == nil {
		t.Fatalf("webdoc bind to kv object accepted by store")
	}
	if m, err := blind.OpenMap("biblio", webobj.At(remote)); err != nil {
		t.Fatalf("matching kv bind rejected: %v", err)
	} else {
		m.Close()
	}
}

// TestOpenPicksLowestLayerDeterministically is the replica-selection fix:
// without At(...), Open binds the lowest-layer replica with the smallest
// store ID, regardless of registration order.
func TestOpenPicksLowestLayerDeterministically(t *testing.T) {
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	server, _ := sys.NewServer("www")
	const doc = webobj.ObjectID("pick-doc")
	if err := sys.Publish(server, doc, webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(mirror, doc); err != nil {
		t.Fatal(err)
	}
	// Two caches, replicated in descending-ID order so registration order
	// is adverse to the deterministic rule.
	cacheHi, err := sys.NewCache("cache-hi", server, webobj.WithStoreID(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cacheHi, doc); err != nil {
		t.Fatal(err)
	}
	cacheLo, err := sys.NewCache("cache-lo", server, webobj.WithStoreID(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cacheLo, doc); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		d, err := sys.Open(doc)
		if err != nil {
			t.Fatal(err)
		}
		addr := d.StoreAddr()
		d.Close()
		if addr != cacheLo.Addr() {
			t.Fatalf("open %d bound %s, want lowest-layer lowest-ID cache %s", i, addr, cacheLo.Addr())
		}
	}
}

// TestMapReadYourWrites: the RYW session guarantee enforced through the
// typed Map handle — a put through a lazily-updated cache is visible to the
// writer's own immediate get (the cache demands the missing write).
func TestMapReadYourWrites(t *testing.T) {
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	server, _ := sys.NewServer("www")
	const kv = webobj.ObjectID("session-kv")
	// Pushes only every hour: without RYW the cache would stay stale.
	if err := sys.Publish(server, kv, webobj.KV(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, kv, webobj.ReadYourWrites); err != nil {
		t.Fatal(err)
	}
	m, err := sys.OpenMap(kv, webobj.At(cache), webobj.WithSession(webobj.ReadYourWrites))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := m.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if v, err := m.Get(key); err != nil || string(v) != "v" {
			t.Fatalf("RYW violated through Map handle: %q, %v", v, err)
		}
	}
}

// TestLogMonotonicReads: the MR session guarantee enforced through the
// typed Log handle — a travelling client whose first read was at the
// primary cannot observe a shorter log at a lagging mirror.
func TestLogMonotonicReads(t *testing.T) {
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	server, _ := sys.NewServer("www")
	const alog = webobj.ObjectID("session-log")
	// Mirrors sync only every hour: the mirror is always stale in this test.
	if err := sys.Publish(server, alog, webobj.AppLog(), webobj.MirroredSiteStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(mirror, alog, webobj.MonotonicReads); err != nil {
		t.Fatal(err)
	}
	l, err := sys.OpenLog(alog, webobj.At(server), webobj.WithSession(webobj.MonotonicReads))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("e")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.Len()
	if err != nil || n != 3 {
		t.Fatalf("len at primary = %d, %v", n, err)
	}
	if err := l.Rebind(mirror); err != nil {
		t.Fatal(err)
	}
	n, err = l.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("monotonic reads violated through Log handle: len %d after rebind", n)
	}
}

// TestReusedClientIdentityResumesWriteHistory: a new binding that reuses a
// persistent client ID (a restarted process) must not re-issue write IDs
// the deployment already applied — the bind seeds the session's write
// counter from the store's applied vector, so the second process's writes
// land instead of being deduplicated as replays.
func TestReusedClientIdentityResumesWriteHistory(t *testing.T) {
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	server, _ := sys.NewServer("www")
	const doc = webobj.ObjectID("resume-doc")
	if err := sys.Publish(server, doc, webobj.WebDoc(), webobj.ForumStrategy()); err != nil {
		t.Fatal(err)
	}
	// "Process one": pinned client 7 writes and exits.
	d1, err := sys.Open(doc, webobj.At(server), webobj.AsClient(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("p", []byte("FIRST"), ""); err != nil {
		t.Fatal(err)
	}
	d1.Close()
	// "Process two": the same client identity binds fresh and writes again.
	d2, err := sys.Open(doc, webobj.At(server), webobj.AsClient(7))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Put("p", []byte("SECOND"), ""); err != nil {
		t.Fatal(err)
	}
	pg, err := d2.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "SECOND" {
		t.Fatalf("reused client identity write dropped: page = %q", pg.Content)
	}
}
