package webobj

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/naming"
)

// FailoverConfig tunes the client-side retry loop shared by the typed Open
// calls and every read/write on a bound handle. The zero value means the
// defaults below; WithFailover overrides them system-wide.
type FailoverConfig struct {
	// Attempts bounds how many times one operation is tried (first try
	// included; default 5, minimum 1).
	Attempts int
	// BaseDelay is the sleep before the first retry (default 25ms); each
	// further retry doubles it up to MaxDelay (default 1s). Every sleep is
	// jittered by up to half its length so a herd of clients failing over
	// from the same dead replica does not re-dial in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Deadline bounds the whole loop: once exceeded, the last error is
	// returned even with attempts left (default 15s).
	Deadline time.Duration
}

// WithFailover tunes client-side failover for every handle this system
// opens.
func WithFailover(f FailoverConfig) SystemOption {
	return func(s *System) { s.failover = f }
}

// withDefaults fills zero fields with the documented defaults.
func (f FailoverConfig) withDefaults() FailoverConfig {
	if f.Attempts < 1 {
		f.Attempts = 5
	}
	if f.BaseDelay <= 0 {
		f.BaseDelay = 25 * time.Millisecond
	}
	if f.MaxDelay <= 0 {
		f.MaxDelay = time.Second
	}
	if f.Deadline <= 0 {
		f.Deadline = 15 * time.Second
	}
	return f
}

// retryVerdict classifies one failed attempt.
type retryVerdict int

const (
	// verdictTerminal: the error is not a liveness problem (bad request,
	// semantics mismatch, closed handle); retrying cannot help.
	verdictTerminal retryVerdict = iota
	// verdictRetrySame: the store answered StatusRetry (recovering, or a
	// session requirement not yet satisfiable); it is alive, so back off
	// and re-ask the same replica.
	verdictRetrySame
	// verdictRetryElsewhere: no answer at all (timeout, transport failure)
	// or the replica no longer hosts the object; re-resolve and try
	// another contact point.
	verdictRetryElsewhere
)

// classifyFailure maps a bind/invoke error onto a retry verdict.
func classifyFailure(err error) retryVerdict {
	if errors.Is(err, core.ErrClosed) {
		return verdictTerminal
	}
	if errors.Is(err, core.ErrTimeout) {
		return verdictRetryElsewhere
	}
	var re *core.RemoteError
	if errors.As(err, &re) {
		switch re.Status {
		case msg.StatusRetry:
			return verdictRetrySame
		case msg.StatusNotFound:
			// The replica dropped the object (Drop, or a daemon that came
			// back empty); another contact point may still host it.
			return verdictRetryElsewhere
		default:
			return verdictTerminal
		}
	}
	// Anything else is a transport-level failure (endpoint gone,
	// connection refused): the contact point is unreachable.
	return verdictRetryElsewhere
}

// backoff is one operation's jittered-exponential sleep schedule.
type backoff struct {
	cfg      FailoverConfig
	deadline time.Time
	delay    time.Duration
	attempt  int
}

func newBackoff(cfg FailoverConfig) *backoff {
	return &backoff{cfg: cfg, deadline: time.Now().Add(cfg.Deadline), delay: cfg.BaseDelay}
}

// next reports whether another attempt is allowed, sleeping the jittered
// delay first. It returns false once the attempt budget or the deadline is
// spent.
func (b *backoff) next() bool {
	b.attempt++
	if b.attempt >= b.cfg.Attempts {
		return false
	}
	d := b.delay + jitterDelay(b.delay/2)
	if remaining := time.Until(b.deadline); remaining <= 0 {
		return false
	} else if d > remaining {
		d = remaining
	}
	time.Sleep(d)
	b.delay *= 2
	if b.delay > b.cfg.MaxDelay {
		b.delay = b.cfg.MaxDelay
	}
	return !time.Now().After(b.deadline)
}

// failoverRNG jitters retry delays; seeded per process, guarded for
// concurrent handles.
var failoverRNG = struct {
	mu sync.Mutex
	r  *rand.Rand
}{r: rand.New(rand.NewSource(time.Now().UnixNano()))}

// jitterDelay draws a uniform duration in [0, max].
func jitterDelay(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	failoverRNG.mu.Lock()
	defer failoverRNG.mu.Unlock()
	return time.Duration(failoverRNG.r.Int63n(int64(max) + 1))
}

// invoke is the failure-hardened call path every typed handle method uses:
// it retries retryable failures (timeouts, transport errors, StatusRetry
// from a recovering store) under the system's FailoverConfig, re-resolving
// and rebinding to another live replica when the bound one stops
// answering. Writes are safe to re-issue: write identifiers are
// deduplicated at-most-once by every store on the path.
func (b *binding) invoke(inv msg.Invocation) ([]byte, error) {
	out, err := b.proxy.Invoke(inv)
	if err == nil || b.sys == nil {
		return out, err
	}
	bo := newBackoff(b.failover)
	for {
		v := classifyFailure(err)
		if v == verdictTerminal {
			return nil, err
		}
		if !bo.next() {
			return nil, err
		}
		if v == verdictRetryElsewhere {
			b.rebindElsewhere()
		}
		out, err = b.proxy.Invoke(inv)
		if err == nil {
			return out, nil
		}
	}
}

// rebindElsewhere re-resolves the object and moves the proxy to the best
// contact point other than the one that just failed; with no alternative
// it re-dials the same address (the store may have restarted). Best
// effort: a failed rebind leaves the next invoke to try again.
func (b *binding) rebindElsewhere() {
	if b.pinned {
		return // an At()-pinned handle never migrates
	}
	cur := b.proxy.StoreAddr()
	b.sys.res.Invalidate(b.object)
	rec, err := b.sys.res.Resolve(b.object)
	if err != nil {
		return
	}
	pick, ok := naming.PickEntry(filterAddr(rec.Entries, cur))
	if !ok {
		pick, ok = naming.PickEntry(rec.Entries)
	}
	if !ok {
		return
	}
	_ = b.proxy.Rebind(pick.Addr)
}
