// Package webobj is the public face of the framework: distributed,
// consistent, replicated Web objects with a per-object caching/replication
// strategy, reproducing "A Framework for Consistent, Replicated Web
// Objects" (Kermarrec, Kuz, van Steen, Tanenbaum; ICDCS 1998).
//
// A System is one deployment of the framework over a network Fabric. The
// fabric is pluggable: the default in-process simulated network
// (NewMemFabric) and real TCP (NewTCPFabric) build the same System, so the
// code that publishes, replicates, and accesses objects is identical in a
// single-process simulation and a multi-process production deployment —
// only the fabric changes:
//
//	sys := webobj.NewSystem()                                      // simulation
//	sys := webobj.NewSystem(webobj.WithFabric(webobj.NewTCPFabric(""))) // real TCP
//
// A System owns a location (naming) service and any number of stores in
// the paper's three layers — permanent stores (Web servers), object-
// initiated stores (mirrors), and client-initiated stores (proxy/browser
// caches). Stores running in other processes join by address:
// AttachServer registers a remote daemon's store, and AttachObject declares
// an object it publishes, after which local stores replicate from it
// exactly as from a local parent.
//
// An object is published at a permanent store with a Semantics selector
// (WebDoc, KV, AppLog) and a Strategy (the paper's Table 1 parameters plus
// the object-based coherence model); replicas are installed at other
// stores; clients bind through the typed Open calls — OpenDocument,
// OpenMap, OpenLog — optionally with client-based coherence models (session
// guarantees). Binds are semantics-checked at the store, so a client
// holding the wrong typed handle fails at bind time, not at first use.
//
//	sys := webobj.NewSystem()
//	server, _ := sys.NewServer("www")
//	_ = sys.Publish(server, "conf-page", webobj.WebDoc(), webobj.ConferenceStrategy(time.Second))
//	cache, _ := sys.NewCache("proxy", server)
//	_ = sys.Replicate(cache, "conf-page", webobj.ReadYourWrites)
//	doc, _ := sys.Open("conf-page", webobj.At(cache), webobj.WithSession(webobj.ReadYourWrites))
//	_ = doc.Append("program.html", []byte("<li>keynote</li>"))
//	page, _ := doc.Get("program.html")
//
// # Observability
//
// WithMetrics turns on the metrics registry (atomic counters/gauges and
// HDR log-linear histograms, all carrying {store, object} labels — the
// headline series is globe_propagation_lag_seconds, the age of each
// update at local apply); WithTrace(n) additionally keeps the last n
// write-lifecycle events in a lock-free ring. Read them in-process with
// MetricsSnapshot and TraceEvents, serve Prometheus text with
// MetricsHandler, or fetch either over the control port ("metrics" and
// "trace" ops; see globectl). Both are off by default and then cost one
// nil-check branch and zero allocations on the hot path. Caveat:
// latency-valued series (WAL sync, propagation lag) measured on a 1-vCPU
// host include scheduler interleaving — compare shapes and relative
// shifts there, not absolute values.
package webobj

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/nameserv"
	"repro/internal/naming"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/wal"
)

// ObjectID names a distributed Web object.
type ObjectID = ids.ObjectID

// Strategy is the per-object replication policy (Table 1 of the paper).
type Strategy = strategy.Strategy

// Page is a Web-document page with its version metadata.
type Page = webdoc.Page

// ClientModel is a client-based coherence model (§3.2.2, Bayou session
// guarantees, enforced rather than checked).
type ClientModel = coherence.ClientModel

// Client-based coherence models.
const (
	ReadYourWrites    = coherence.ReadYourWrites
	MonotonicReads    = coherence.MonotonicReads
	MonotonicWrites   = coherence.MonotonicWrites
	WritesFollowReads = coherence.WritesFollowReads
)

// Strategy presets (see internal/strategy for the full parameter space).
var (
	// ConferenceStrategy is Table 2 of the paper: PRAM everywhere, single
	// writer, lazy periodic partial pushes, RYW-capable caches.
	ConferenceStrategy = strategy.Conference
	// PersonalHomePageStrategy suits rarely-shared personal pages.
	PersonalHomePageStrategy = strategy.PersonalHomePage
	// PopularEventPageStrategy suits hot, proxy-replicated pages.
	PopularEventPageStrategy = strategy.PopularEventPage
	// MagazineStrategy suits periodically-published documents.
	MagazineStrategy = strategy.Magazine
	// ForumStrategy suits causally-ordered shared forums.
	ForumStrategy = strategy.Forum
	// WhiteboardStrategy suits concurrent-writer groupware.
	WhiteboardStrategy = strategy.Whiteboard
	// MirroredSiteStrategy suits eventually-synchronised mirrors.
	MirroredSiteStrategy = strategy.MirroredSite
)

// StrategyPresets returns the named presets with default periods, keyed the
// way tools (globed -strategy) select them.
func StrategyPresets() map[string]Strategy { return strategy.Presets() }

// SemanticsByName resolves a semantics selector from its type name
// ("webdoc", "kvstore"/"kv", "applog"/"log"); tools use it to parse flags.
func SemanticsByName(name string) (Semantics, error) {
	switch name {
	case "webdoc", "doc":
		return WebDoc(), nil
	case "kvstore", "kv":
		return KV(), nil
	case "applog", "log":
		return AppLog(), nil
	default:
		return Semantics{}, fmt.Errorf("webobj: unknown semantics %q (want webdoc|kv|applog)", name)
	}
}

// ClientModelsByNames parses a comma-separated list of session-guarantee
// short names (ryw, mr, mw, wfr); tools use it to parse flags.
func ClientModelsByNames(list string) ([]ClientModel, error) {
	if list == "" {
		return nil, nil
	}
	var out []ClientModel
	for _, part := range strings.Split(list, ",") {
		switch strings.TrimSpace(part) {
		case "ryw":
			out = append(out, ReadYourWrites)
		case "mr":
			out = append(out, MonotonicReads)
		case "mw":
			out = append(out, MonotonicWrites)
		case "wfr":
			out = append(out, WritesFollowReads)
		case "":
		default:
			return nil, fmt.Errorf("webobj: unknown session model %q (want ryw|mr|mw|wfr)", part)
		}
	}
	return out, nil
}

// Store is one store (any layer). Local stores run inside this process;
// attached stores (AttachServer) are daemons in other processes, addressed
// over the fabric.
type Store struct {
	name string
	addr string
	role replication.Role
	st   *store.Store // nil for attached (remote) stores
}

// Name returns the store's name within the system (for attached stores,
// their address).
func (s *Store) Name() string { return s.name }

// Addr returns the store's transport address.
func (s *Store) Addr() string {
	if s.st != nil {
		return s.st.Addr()
	}
	return s.addr
}

// Remote reports whether the store runs in another process (attached via
// AttachServer) rather than inside this System.
func (s *Store) Remote() bool { return s.st == nil }

// ErrRemoteStore is returned by operations that need the store's in-process
// state when called on an attached (remote) store.
var ErrRemoteStore = errors.New("webobj: store is in another process")

// Stats returns the replication protocol counters for one hosted object
// (dissemination rounds, batch frames, demands, parked reads, ...).
func (s *Store) Stats(object ObjectID) (replication.Stats, error) {
	if s.st == nil {
		return replication.Stats{}, ErrRemoteStore
	}
	return s.st.Stats(ids.ObjectID(object))
}

// Applied returns the store's applied version vector for one hosted object.
func (s *Store) Applied(object ObjectID) (ids.VersionVec, error) {
	if s.st == nil {
		return nil, ErrRemoteStore
	}
	return s.st.Applied(ids.ObjectID(object))
}

// objectInfo is what the System knows about a published or attached object.
type objectInfo struct {
	sem   Semantics
	strat Strategy
}

// System is one deployment of the framework over a Fabric. Safe for
// concurrent use.
type System struct {
	mu          sync.Mutex
	fabric      Fabric
	ns          *naming.Service
	res         Resolver
	nsAddrs     []string // name-server addresses (WithNameServer)
	stores      map[string]*Store
	parents     map[string]string // store name -> parent store name
	objects     map[ObjectID]objectInfo
	ctlEps      []transport.Endpoint   // control listeners (ServeControl)
	digest      time.Duration          // default DigestInterval for stores in this system
	demandRetry time.Duration          // default DemandRetry for stores in this system
	dataDir     string                 // WAL root for permanent stores (WithDataDir)
	durability  Durability             // WAL tuning (WithDurability)
	reparent    int                    // ReparentAfter for stores (WithReparenting)
	failover    FailoverConfig         // client retry tuning (WithFailover)
	leaseRenew  time.Duration          // contact-lease heartbeat period (WithLeaseRenewal)
	regs        map[string][]regRecord // addr -> registrations, replayed when a lease lapses
	renewDone   chan struct{}
	renewWG     sync.WaitGroup
	nextEP      int
	closed      bool

	// Observability (WithMetrics / WithTrace). obsv stays nil when both are
	// off; every downstream consumer is nil-safe.
	metricsOn bool
	traceN    int
	obsv      *obs.Observer
}

// regRecord is one registration this system made, kept so the lease
// heartbeat can re-register a contact point the directory expired (e.g.
// after a long pause that outlived the lease TTL).
type regRecord struct {
	object ObjectID
	entry  NameEntry
	meta   NameMeta
}

// SystemOption configures NewSystem.
type SystemOption func(*System)

// WithFabric deploys the system over f instead of the default in-process
// simulated network. The system takes ownership: System.Close closes the
// fabric.
func WithFabric(f Fabric) SystemOption { return func(s *System) { s.fabric = f } }

// WithResolver resolves objects, identifiers, and write-sequence floors
// through r instead of the in-process location service. The system takes
// ownership: System.Close closes the resolver.
func WithResolver(r Resolver) SystemOption { return func(s *System) { s.res = r } }

// WithNameServer resolves through the networked name service at the given
// addresses (tried in order) over this system's fabric. Publications and
// replicas register themselves there, client and store identifiers are
// leased from it (globally unique across daemons), and objects published by
// other processes are opened by name alone — no AttachObject sem/strat
// mirroring. See NewNameServer and cmd/globens for running the service.
func WithNameServer(addrs ...string) SystemOption {
	return func(s *System) { s.nsAddrs = addrs }
}

// WithDemandRetry tunes the unanswered-demand re-request delay for every
// store this system creates (default 50ms; negative disables retries). Keep
// it well below the digest interval: the retry chases a demand whose frame
// or reply was lost, the heartbeat exposes gaps nobody knows about.
func WithDemandRetry(d time.Duration) SystemOption {
	return func(s *System) { s.demandRetry = d }
}

// FsyncPolicy selects when a durable store's write-ahead log reaches stable
// storage.
type FsyncPolicy int

const (
	// FsyncOff leaves flushing to the OS page cache: fastest, but writes
	// acknowledged since the last snapshot/close can be lost to a machine
	// (not process) crash.
	FsyncOff FsyncPolicy = iota
	// FsyncInterval flushes on a timer (default 100ms): bounds loss to one
	// interval of acknowledged writes.
	FsyncInterval
	// FsyncAlways flushes before every write acknowledgement: zero
	// acknowledged-write loss even under kill -9, at one fsync per write.
	FsyncAlways
)

// Durability tunes the write-ahead log of durable stores (WithDataDir).
// The zero value means FsyncOff, 100ms interval, snapshot every 1024
// records, 2s recovery grace.
type Durability struct {
	// Fsync is the log flush policy.
	Fsync FsyncPolicy
	// SyncInterval is the flush cadence under FsyncInterval.
	SyncInterval time.Duration
	// SnapshotEvery is the log record count between snapshot compactions
	// (negative disables compaction).
	SnapshotEvery int
	// RecoveryGrace bounds how long a restarted store waits for its
	// children's anti-entropy answers before serving anyway.
	RecoveryGrace time.Duration
}

// WithDataDir makes every permanent store this system creates durable: each
// hosted object keeps a write-ahead log and periodic snapshot under
// <dir>/store-<ID>/<object>/, and a restarted daemon recovers state from
// disk, anti-entropies the tail from surviving replicas, then serves.
// Mirror and cache stores ignore it (their state is reconstructible from
// the parent).
func WithDataDir(dir string) SystemOption {
	return func(s *System) { s.dataDir = dir }
}

// WithDurability tunes the WAL of stores made durable by WithDataDir.
func WithDurability(d Durability) SystemOption {
	return func(s *System) { s.durability = d }
}

// storeDurability maps the public tuning onto the store layer's knobs.
func (s *System) storeDurability() store.Durability {
	d := store.Durability{
		SyncInterval:  s.durability.SyncInterval,
		SnapshotEvery: s.durability.SnapshotEvery,
		RecoveryGrace: s.durability.RecoveryGrace,
	}
	switch s.durability.Fsync {
	case FsyncInterval:
		d.Fsync = wal.SyncInterval
	case FsyncAlways:
		d.Fsync = wal.SyncAlways
	}
	return d
}

// ParseFsyncPolicy resolves a flag/manifest fsync value: "off", "interval",
// or "always".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "off":
		return FsyncOff, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return FsyncOff, fmt.Errorf("webobj: unknown fsync policy %q (want off|interval|always)", s)
}

// WithReparenting turns on the store-level liveness watch for every replica
// this system creates: a child that misses `after` consecutive expected
// digest heartbeats from its parent — or exhausts its subscribe retry
// budget — declares the parent dead, re-resolves the object, and
// re-subscribes at the live replica closest to the root (never itself or
// its own subtree). Requires WithDigestInterval: the heartbeat is the
// liveness signal. Choose `after` ≥ 2 so one jittered or lost heartbeat
// does not trigger a spurious re-parent.
func WithReparenting(after int) SystemOption {
	return func(s *System) { s.reparent = after }
}

// WithLeaseRenewal starts a background heartbeat that renews this system's
// contact-point leases at the name service every d (choose d ≤ a third of
// the server's lease TTL). If a renewal reports the directory already
// expired a contact point, its registrations are replayed. Without this
// option a daemon's registrations silently age out of a lease-enabled
// directory.
func WithLeaseRenewal(d time.Duration) SystemOption {
	return func(s *System) { s.leaseRenew = d }
}

// WithDigestInterval turns on anti-entropy digest heartbeats for every store
// this system creates: each interval (jittered per store) a store sends its
// subscribed children a compact applied-vector digest, and a child that
// detects a gap demands the missing updates — so a replica behind silent
// tail-loss or a healed partition converges within about one heartbeat
// instead of waiting for new traffic. Zero (the default) disables
// heartbeats. Individual stores can override with the store-level
// WithStoreDigestInterval.
func WithDigestInterval(d time.Duration) SystemOption {
	return func(s *System) { s.digest = d }
}

// NewSystem creates a deployment. By default it runs over an
// instantaneous, lossless in-process network; pass WithFabric to deploy
// over a configured memnet or over real TCP.
func NewSystem(opts ...SystemOption) *System {
	s := &System{
		ns:      naming.New(),
		stores:  make(map[string]*Store),
		parents: make(map[string]string),
		objects: make(map[ObjectID]objectInfo),
		regs:    make(map[string][]regRecord),
	}
	for _, o := range opts {
		o(s)
	}
	s.failover = s.failover.withDefaults()
	if s.fabric == nil {
		s.fabric = NewMemFabric()
	}
	if s.res == nil {
		if len(s.nsAddrs) > 0 {
			s.res = nsResolver{nameserv.NewClient(nameserv.ClientConfig{
				Fabric: s.fabric,
				// Unique per System: several Systems may share one fabric
				// (memnet simulations), and endpoint names must not collide.
				Name:    fmt.Sprintf("nsc/%d", nextResolverEP.Add(1)),
				Servers: s.nsAddrs,
			})}
		} else {
			s.res = localResolver{ns: s.ns}
		}
	}
	s.initObs()
	if s.leaseRenew > 0 {
		s.renewDone = make(chan struct{})
		s.renewWG.Add(1)
		go s.renewLoop()
	}
	return s
}

// renewLoop heartbeats the liveness lease of every local store's contact
// points and replays registrations the directory expired meanwhile.
func (s *System) renewLoop() {
	defer s.renewWG.Done()
	t := time.NewTicker(s.leaseRenew)
	defer t.Stop()
	for {
		select {
		case <-s.renewDone:
			return
		case <-t.C:
		}
		s.mu.Lock()
		addrs := make(map[string][]regRecord, len(s.regs))
		for addr, regs := range s.regs {
			addrs[addr] = append([]regRecord(nil), regs...)
		}
		s.mu.Unlock()
		for addr, regs := range addrs {
			n, err := s.res.RenewContact(addr)
			if err != nil || n > 0 {
				continue // unreachable directory: next tick retries
			}
			// The lease lapsed (e.g. the process was paused past the TTL):
			// the tombstoned entries must be registered afresh.
			for _, r := range regs {
				_ = s.res.Register(r.object, r.entry, r.meta)
			}
		}
	}
}

// noteRegistration remembers a registration for lease-lapse replay.
func (s *System) noteRegistration(object ObjectID, e NameEntry, meta NameMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := s.regs[e.Addr]
	for i, r := range regs {
		if r.object == object {
			regs[i] = regRecord{object: object, entry: e, meta: meta}
			return
		}
	}
	s.regs[e.Addr] = append(regs, regRecord{object: object, entry: e, meta: meta})
}

// dropRegistration forgets one (addr, object) registration.
func (s *System) dropRegistration(object ObjectID, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := s.regs[addr]
	for i, r := range regs {
		if r.object == object {
			s.regs[addr] = append(regs[:i], regs[i+1:]...)
			return
		}
	}
}

// nextResolverEP disambiguates name-service client endpoint names across
// Systems sharing one fabric.
var nextResolverEP atomic.Uint64

// NewSystemWithNetwork creates a simulated deployment with memnet options
// (seed, default link profile). Shorthand for
// NewSystem(WithFabric(NewMemFabric(opts...))).
func NewSystemWithNetwork(opts ...memnet.Option) *System {
	return NewSystem(WithFabric(NewMemFabric(opts...)))
}

// Network exposes the underlying simulated network (link shaping, traffic
// statistics) when the system runs over a memnet fabric, and nil otherwise.
func (s *System) Network() *memnet.Network {
	if n, ok := s.fabric.(*memnet.Network); ok {
		return n
	}
	return nil
}

// Naming exposes the in-process location service (the default resolver's
// backing store). Systems resolving through a networked name server keep
// this service empty; use ResolveName for the deployment-wide view.
func (s *System) Naming() *naming.Service { return s.ns }

// Resolver exposes the naming seam the system resolves through.
func (s *System) Resolver() Resolver { return s.res }

// ResolveName returns the object's name record as the system's resolver
// sees it (local registrations, or the networked directory under
// WithNameServer).
func (s *System) ResolveName(object ObjectID) (NameRecord, error) {
	return s.res.Resolve(object)
}

// StoreOption configures store creation.
type StoreOption func(*storeCfg)

type storeCfg struct {
	id        ids.StoreID
	listen    string
	digest    time.Duration
	digestSet bool
}

// WithListenAddr pins the store's transport address independently of its
// name. By default the name doubles as the listen hint (a host:port name
// pins the address on TCP fabrics); manifest-driven daemons give stores
// friendly names and pin the address here.
func WithListenAddr(addr string) StoreOption {
	return func(c *storeCfg) { c.listen = addr }
}

// WithStoreID pins the store's identifier instead of allocating one from
// the system's naming service. Multi-process deployments need it: each
// process has its own naming service, so daemons must be configured with
// deployment-unique IDs.
func WithStoreID(id uint32) StoreOption {
	return func(c *storeCfg) { c.id = ids.StoreID(id) }
}

// WithStoreDigestInterval overrides the system's digest-heartbeat interval
// for one store (zero disables heartbeats at that store).
func WithStoreDigestInterval(d time.Duration) StoreOption {
	return func(c *storeCfg) { c.digest, c.digestSet = d, true }
}

// NewServer creates a permanent store (a Web server). Over a TCP fabric a
// name of the form host:port pins the listen address.
func (s *System) NewServer(name string, opts ...StoreOption) (*Store, error) {
	return s.newStore(name, replication.RolePermanent, nil, opts)
}

// NewMirror creates an object-initiated store below parent. A nil parent
// is allowed for stores whose replicas name their parents individually
// (ReplicateFrom, manifest-driven daemons).
func (s *System) NewMirror(name string, parent *Store, opts ...StoreOption) (*Store, error) {
	return s.newStore(name, replication.RoleObjectInitiated, parent, opts)
}

// NewCache creates a client-initiated store below parent. A nil parent is
// allowed as for NewMirror.
func (s *System) NewCache(name string, parent *Store, opts ...StoreOption) (*Store, error) {
	return s.newStore(name, replication.RoleClientInitiated, parent, opts)
}

func (s *System) newStore(name string, role replication.Role, parent *Store, opts []StoreOption) (*Store, error) {
	var cfg storeCfg
	for _, o := range opts {
		o(&cfg)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("webobj: system closed")
	}
	if _, dup := s.stores[name]; dup {
		return nil, fmt.Errorf("webobj: store %q already exists", name)
	}
	hint := name
	if cfg.listen != "" {
		hint = cfg.listen
	}
	ep, err := s.fabric.Endpoint("store/" + hint)
	if err != nil {
		return nil, err
	}
	id := cfg.id
	if id == 0 {
		// Allocated through the resolver: in-process deployments get the
		// local counter, name-served deployments lease a globally unique
		// range so no two daemons can mint the same store identity.
		id, err = s.res.NextStore()
		if err != nil {
			_ = ep.Close()
			return nil, fmt.Errorf("webobj: store %q: allocate ID: %w", name, err)
		}
	} else {
		// Keep pinned and auto-allocated IDs disjoint within this deployment:
		// duplicate store identities corrupt version-vector accounting.
		if err := s.res.ReserveStore(id); err != nil {
			_ = ep.Close()
			return nil, fmt.Errorf("webobj: store %q: %w", name, err)
		}
		for _, other := range s.stores {
			if other.st != nil && other.st.ID() == id {
				_ = ep.Close()
				return nil, fmt.Errorf("webobj: store ID %d already used by %q", id, other.name)
			}
		}
	}
	digest := s.digest
	if cfg.digestSet {
		digest = cfg.digest
	}
	scfg := store.Config{
		ID:             id,
		Role:           role,
		Endpoint:       ep,
		DemandRetry:    s.demandRetry,
		DigestInterval: digest,
		ReparentAfter:  s.reparent,
		ResolveParent:  s.parentCandidates,
		Obs:            s.obsv,
	}
	if role == replication.RolePermanent {
		// WithDataDir is a system-wide knob scoped to the stores that can
		// honour it: only the permanent role persists (store.Host rejects a
		// DataDir on mirror/cache roles — durable mirrors are a planned
		// follow-on), so mirrors and caches of a durable system are created
		// without one rather than failing the whole deployment.
		scfg.DataDir = s.dataDir
		scfg.Durability = s.storeDurability()
	}
	st := store.New(scfg)
	h := &Store{name: name, st: st, role: role}
	s.stores[name] = h
	if parent != nil {
		s.parents[name] = parent.name
	}
	return h, nil
}

// parentCandidates is the store layer's re-parenting seam: the object's
// current contact points as the resolver sees them, freshly fetched (the
// cached record may still list the parent being replaced). It runs on the
// store's event loop during a re-parent pick — a rare event — so the
// resolver round-trip's bounded stall is acceptable there.
func (s *System) parentCandidates(object ids.ObjectID) []replication.ParentCandidate {
	s.res.Invalidate(object)
	rec, err := s.res.Resolve(object)
	if err != nil {
		return nil
	}
	out := make([]replication.ParentCandidate, 0, len(rec.Entries))
	for _, e := range rec.Entries {
		out = append(out, replication.ParentCandidate{Addr: e.Addr, Role: e.Role})
	}
	return out
}

// AttachServer registers a permanent store running in another process at
// addr (a daemon started with cmd/globed, or any process hosting a Store
// over the same fabric type). The returned handle can parent local caches
// and mirrors, be a bind target (At), and be declared the publisher of
// objects via AttachObject.
func (s *System) AttachServer(addr string) (*Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("webobj: system closed")
	}
	if _, dup := s.stores[addr]; dup {
		return nil, fmt.Errorf("webobj: store %q already exists", addr)
	}
	h := &Store{name: addr, addr: addr, role: replication.RolePermanent}
	s.stores[addr] = h
	return h, nil
}

// Publish creates an object of the given semantics type at a permanent
// store under the given strategy and registers it with the location
// service. The session models declare which client-based guarantees the
// permanent store itself must be able to enforce for clients bound
// directly to it (replicas declare theirs via Replicate).
func (s *System) Publish(server *Store, object ObjectID, sem Semantics, strat Strategy, session ...ClientModel) error {
	if !sem.valid() {
		return errors.New("webobj: zero Semantics; use WebDoc(), KV(), or AppLog()")
	}
	if server.Remote() {
		return fmt.Errorf("webobj: %q is in another process; publish there and use AttachObject here", server.name)
	}
	if server.role != replication.RolePermanent {
		return fmt.Errorf("webobj: objects are published at permanent stores, %q is %v", server.name, server.role)
	}
	if err := server.st.Host(store.HostConfig{
		Object: object, Semantics: sem.factory(), SemName: sem.name, Strat: strat,
		Session: session,
	}); err != nil {
		return err
	}
	s.mu.Lock()
	s.objects[object] = objectInfo{sem: sem, strat: strat}
	s.mu.Unlock()
	// The record carries the object's semantics and model, so other
	// processes bind and replicate through the resolver without any manual
	// configuration.
	meta := NameMeta{Sem: sem.name, Strat: strat, HasStrat: true, Models: modelNames(session)}
	entry := naming.Entry{Addr: server.st.Addr(), Store: server.st.ID(), Role: server.role}
	if err := s.res.Register(object, entry, meta); err != nil {
		return fmt.Errorf("webobj: publish %q: register with name service: %w", object, err)
	}
	s.noteRegistration(object, entry, meta)
	return nil
}

// modelNames renders client models as their record short names.
func modelNames(models []ClientModel) []string {
	if len(models) == 0 {
		return nil
	}
	out := make([]string, 0, len(models))
	for _, m := range models {
		switch m {
		case ReadYourWrites:
			out = append(out, "ryw")
		case MonotonicReads:
			out = append(out, "mr")
		case MonotonicWrites:
			out = append(out, "mw")
		case WritesFollowReads:
			out = append(out, "wfr")
		}
	}
	return out
}

// AttachObject declares an object that is published in another process at
// the attached store: sem and strat mirror the remote Publish. It registers
// the remote contact point with the local location service and records the
// semantics and strategy, after which local stores can Replicate the object
// from the attached store and clients can Open it.
//
// Under WithNameServer this manual mirroring is unnecessary: Replicate and
// the typed Open calls fetch the published record (semantics, strategy,
// models) from the name service, and AttachObject is only useful to
// override it locally.
func (s *System) AttachObject(at *Store, object ObjectID, sem Semantics, strat Strategy) error {
	if !sem.valid() {
		return errors.New("webobj: zero Semantics; use WebDoc(), KV(), or AppLog()")
	}
	s.mu.Lock()
	if info, ok := s.objects[object]; ok && info.sem.name != sem.name {
		s.mu.Unlock()
		return fmt.Errorf("webobj: object %q already known as %s, cannot attach as %s",
			object, info.sem.name, sem.name)
	}
	s.objects[object] = objectInfo{sem: sem, strat: strat}
	s.mu.Unlock()
	var id ids.StoreID
	if at.st != nil {
		id = at.st.ID()
	}
	// Attach declarations stay local: the publisher's own registration is
	// the authoritative record in a name-served deployment.
	s.ns.Register(object, naming.Entry{Addr: at.Addr(), Store: id, Role: at.role})
	return nil
}

// Replicate installs a replica of a published (or attached) object at a
// mirror or cache, subscribing it to its parent store — which may live in
// another process. The session models declare which client-based guarantees
// this replica must be able to enforce.
func (s *System) Replicate(at *Store, object ObjectID, session ...ClientModel) error {
	s.mu.Lock()
	parentName, ok := s.parents[at.name]
	var parent *Store
	if ok {
		parent = s.stores[parentName]
	}
	s.mu.Unlock()
	if parent == nil {
		return fmt.Errorf("webobj: store %q has no parent to replicate from", at.name)
	}
	return s.ReplicateFrom(at, parent, object, session...)
}

// ReplicateFrom installs a replica like Replicate but subscribing to an
// explicit parent store, independent of the store's creation-time parent.
// Multi-object daemons use it when different objects hosted by one store
// have different publishers (each object's record names its own permanent
// store).
func (s *System) ReplicateFrom(at, parent *Store, object ObjectID, session ...ClientModel) error {
	if at.Remote() {
		return fmt.Errorf("webobj: cannot install replicas at %q, it is in another process", at.name)
	}
	if parent == nil {
		return fmt.Errorf("webobj: store %q needs a parent to replicate from", at.name)
	}
	// The replica adopts the object's published semantics and strategy,
	// recorded by Publish or AttachObject — or fetched from the name
	// service when neither ran in this process.
	info, err := s.publishedInfo(object)
	if err != nil {
		return err
	}
	if err := at.st.Host(store.HostConfig{
		Object: object, Semantics: info.sem.factory(), SemName: info.sem.name, Strat: info.strat,
		Parent: parent.Addr(), Session: session, Subscribe: true,
	}); err != nil {
		return err
	}
	entry := naming.Entry{Addr: at.st.Addr(), Store: at.st.ID(), Role: at.role}
	if err := s.res.Register(object, entry, NameMeta{}); err != nil {
		return fmt.Errorf("webobj: replicate %q: register with name service: %w", object, err)
	}
	s.noteRegistration(object, entry, NameMeta{})
	return nil
}

// Peer registers a and b as anti-entropy gossip peers for object, in both
// directions. Gossip only applies to objects replicated under the eventual
// model (mirrored sites); it lets sibling mirrors converge without a
// permanent store on the path. Peering is all-or-nothing: if the second
// registration fails the first is rolled back.
func (s *System) Peer(a, b *Store, object ObjectID) error {
	if a.Remote() || b.Remote() {
		return errors.New("webobj: gossip peering requires both stores in this process")
	}
	if err := a.st.AddPeer(ids.ObjectID(object), b.Addr()); err != nil {
		return err
	}
	if err := b.st.AddPeer(ids.ObjectID(object), a.Addr()); err != nil {
		_ = a.st.RemovePeer(ids.ObjectID(object), b.Addr())
		return err
	}
	return nil
}

func (s *System) publishedInfo(object ObjectID) (objectInfo, error) {
	s.mu.Lock()
	info, ok := s.objects[object]
	s.mu.Unlock()
	if ok {
		return info, nil
	}
	// Unknown locally: the name record carries the published semantics and
	// strategy, so a replica can be installed with zero manual mirroring.
	rec, err := s.res.Resolve(object)
	if err != nil {
		return objectInfo{}, fmt.Errorf("webobj: object %q not published, attached, or name-served (%v)", object, err)
	}
	info, err = infoFromRecord(object, rec)
	if err != nil {
		return objectInfo{}, err
	}
	s.mu.Lock()
	if cached, ok := s.objects[object]; ok {
		info = cached // a concurrent Publish/Attach won the race; keep it
	} else {
		s.objects[object] = info
	}
	s.mu.Unlock()
	return info, nil
}

// infoFromRecord converts a fetched name record into the local object info.
func infoFromRecord(object ObjectID, rec NameRecord) (objectInfo, error) {
	if rec.Meta.Sem == "" || !rec.Meta.HasStrat {
		return objectInfo{}, fmt.Errorf("webobj: name record for %q carries no semantics/strategy (published without a name server?)", object)
	}
	sem, err := SemanticsByName(rec.Meta.Sem)
	if err != nil {
		return objectInfo{}, fmt.Errorf("webobj: name record for %q: %w", object, err)
	}
	return objectInfo{sem: sem, strat: rec.Meta.Strat}, nil
}

// OpenOption configures the typed Open calls.
type OpenOption func(*openCfg)

type openCfg struct {
	at      *Store
	session []ClientModel
	client  ids.ClientID
	timeout time.Duration
}

// At binds to a specific store instead of the default replica.
func At(st *Store) OpenOption { return func(c *openCfg) { c.at = st } }

// WithSession enables client-based coherence models for this client.
func WithSession(models ...ClientModel) OpenOption {
	return func(c *openCfg) { c.session = append(c.session, models...) }
}

// WithTimeout bounds each remote call.
func WithTimeout(d time.Duration) OpenOption {
	return func(c *openCfg) { c.timeout = d }
}

// AsClient pins the client identifier instead of allocating one from the
// system's naming service. Multi-process deployments need it for writers:
// write IDs are (client, seq), so concurrent writers in different processes
// must be configured with deployment-unique client IDs. A returning client
// reusing its identity resumes its write history — the bind seeds the
// session's write sequence from the bound store's applied vector — so bind
// at a store that has applied your previous writes (normally where you
// wrote them); rebinding a reused identity at a replica that lags those
// writes would re-issue their IDs and be deduplicated as replays.
func AsClient(id uint32) OpenOption {
	return func(c *openCfg) { c.client = ids.ClientID(id) }
}

// Open binds a new client to a WebDoc object; it is shorthand for
// OpenDocument, the common case of the paper.
func (s *System) Open(object ObjectID, opts ...OpenOption) (*Document, error) {
	return s.OpenDocument(object, opts...)
}

// OpenDocument binds a new client to a WebDoc object. Without At, the
// lowest-layer registered replica is chosen deterministically (the paper:
// "it is generally up to the client to decide to which replica he will
// bind" — closer layers are usually preferable; ties go to the smallest
// store ID).
func (s *System) OpenDocument(object ObjectID, opts ...OpenOption) (*Document, error) {
	b, err := s.open(object, WebDoc(), opts)
	if err != nil {
		return nil, err
	}
	return &Document{binding: b}, nil
}

// OpenMap binds a new client to a KV object. Replica selection follows
// OpenDocument.
func (s *System) OpenMap(object ObjectID, opts ...OpenOption) (*Map, error) {
	b, err := s.open(object, KV(), opts)
	if err != nil {
		return nil, err
	}
	return &Map{binding: b}, nil
}

// OpenLog binds a new client to an AppLog object. Replica selection follows
// OpenDocument.
func (s *System) OpenLog(object ObjectID, opts ...OpenOption) (*Log, error) {
	b, err := s.open(object, AppLog(), opts)
	if err != nil {
		return nil, err
	}
	return &Log{binding: b}, nil
}

// open is the shared binding core of the typed Open calls.
func (s *System) open(object ObjectID, sem Semantics, opts []OpenOption) (*binding, error) {
	cfg := openCfg{timeout: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	// Fail fast locally when the object is known under another semantics
	// type; for objects only the name service knows, the fetched record's
	// semantics name plays the same role. The bind itself re-checks at the
	// store (the wire Sem field), which is what protects stale records —
	// and which is why an At()-pinned open skips the resolve entirely: it
	// needs nothing from the name service, and must not stall on one that
	// is unreachable.
	var rec *NameRecord
	s.mu.Lock()
	info, known := s.objects[object]
	s.mu.Unlock()
	if known {
		if info.sem.name != sem.name {
			return nil, fmt.Errorf("webobj: object %q is %s, not %s", object, info.sem.name, sem.name)
		}
	} else if cfg.at == nil {
		if r, err := s.res.Resolve(object); err == nil {
			rec = &r
			if r.Meta.Sem != "" && r.Meta.Sem != sem.name {
				return nil, fmt.Errorf("webobj: object %q is %s, not %s", object, r.Meta.Sem, sem.name)
			}
		}
	}

	var addr string
	switch {
	case cfg.at != nil:
		addr = cfg.at.Addr()
	case rec != nil:
		e, ok := naming.PickEntry(rec.Entries)
		if !ok {
			return nil, fmt.Errorf("webobj: object %q has no registered replicas", object)
		}
		addr = e.Addr
	default:
		e, ok := s.res.Pick(object)
		if !ok {
			// Objects attached locally while resolving through a name
			// server are still reachable through the in-process service.
			e, ok = s.ns.Pick(object)
		}
		if !ok {
			return nil, fmt.Errorf("webobj: object %q not registered", object)
		}
		addr = e.Addr
	}

	s.mu.Lock()
	s.nextEP++
	epName := fmt.Sprintf("client/%d", s.nextEP)
	s.mu.Unlock()
	ep, err := s.fabric.Endpoint(epName)
	if err != nil {
		return nil, err
	}
	cid := cfg.client
	if cid == 0 {
		if cid, err = s.res.NextClient(); err != nil {
			_ = ep.Close()
			return nil, fmt.Errorf("webobj: allocate client ID: %w", err)
		}
	} else if err := s.res.ReserveClient(cid); err != nil {
		_ = ep.Close()
		return nil, fmt.Errorf("webobj: %w (pick an ID no auto-allocated client holds)", err)
	}
	bindCfg := core.BindConfig{
		Object:    object,
		Endpoint:  ep,
		StoreAddr: addr,
		Client:    cid,
		Session:   cfg.session,
		Prototype: sem.factory(),
		Semantics: sem.name,
		Timeout:   cfg.timeout,
	}
	// Bind under the failover loop: a recovering store's StatusRetry is
	// waited out in place, a dead contact point is re-resolved around
	// (replica died, daemon moved) with jittered backoff, and terminal
	// errors (semantics mismatch, bad request) fail immediately. An
	// At()-pinned bind retries in place but never migrates.
	p, err := core.Bind(bindCfg)
	if err != nil {
		bo := newBackoff(s.failover)
		for err != nil {
			v := classifyFailure(err)
			if v == verdictTerminal || !bo.next() {
				break
			}
			if v == verdictRetryElsewhere && cfg.at == nil {
				s.res.Invalidate(object)
				if r2, rerr := s.res.Resolve(object); rerr == nil {
					if pick, ok := naming.PickEntry(filterAddr(r2.Entries, bindCfg.StoreAddr)); ok {
						bindCfg.StoreAddr = pick.Addr
					}
				}
			}
			p, err = core.Bind(bindCfg)
		}
	}
	if err != nil {
		_ = ep.Close()
		return nil, err
	}
	b := &binding{
		proxy: p, ep: ep,
		sys: s, object: object, failover: s.failover, pinned: cfg.at != nil,
	}
	if cfg.client != 0 {
		// A pinned identity is a resumable one: seed the write counter from
		// the deployment-wide floor too — the bound store's applied vector
		// (seeded inside Bind) is not enough when that replica lags the
		// client's previous writes — and report back on Close so the next
		// session resumes past this one.
		if floor := s.res.ClientSeqFloor(cid); floor > 0 {
			p.Session().SeedSeq(floor)
		}
		res := s.res
		b.closeHook = func() { res.ReportClientSeq(cid, p.Session().Seq()) }
	}
	return b, nil
}

// filterAddr returns entries minus the one at addr.
func filterAddr(entries []NameEntry, addr string) []NameEntry {
	out := make([]NameEntry, 0, len(entries))
	for _, e := range entries {
		if e.Addr != addr {
			out = append(out, e)
		}
	}
	return out
}

// LookupStore returns the store created or attached under name in this
// system (daemon control handlers address stores by name).
func (s *System) LookupStore(name string) (*Store, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stores[name]
	return st, ok
}

// Drop removes a hosted replica at runtime: the store unsubscribes from its
// parent, the replica closes, and its contact point is deregistered from
// the resolver. Clients bound to it start failing and re-resolve to the
// remaining replicas.
func (s *System) Drop(at *Store, object ObjectID) error {
	if at.Remote() {
		return fmt.Errorf("webobj: cannot drop replicas at %q, it is in another process", at.name)
	}
	if err := at.st.Unhost(ids.ObjectID(object)); err != nil {
		return err
	}
	s.dropRegistration(object, at.Addr())
	return s.res.Deregister(object, at.Addr())
}

// Close tears down the whole system: stores first, then the resolver and
// control listeners, then the fabric (which closes any endpoints still
// open, including attached clients').
func (s *System) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stores := make([]*Store, 0, len(s.stores))
	for _, st := range s.stores {
		stores = append(stores, st)
	}
	ctl := s.ctlEps
	s.ctlEps = nil
	s.mu.Unlock()
	if s.renewDone != nil {
		close(s.renewDone)
		s.renewWG.Wait()
	}
	for _, st := range stores {
		if st.st != nil {
			_ = st.st.Close()
		}
	}
	_ = s.res.Close()
	for _, ep := range ctl {
		_ = ep.Close()
	}
	return s.fabric.Close()
}
