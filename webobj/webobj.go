// Package webobj is the public face of the framework: distributed, consistent,
// replicated Web documents with a per-document caching/replication strategy,
// reproducing "A Framework for Consistent, Replicated Web Objects"
// (Kermarrec, Kuz, van Steen, Tanenbaum; ICDCS 1998).
//
// A System is one simulated wide-area deployment: it owns a network, a
// location (naming) service, and any number of stores in the paper's three
// layers — permanent stores (Web servers), object-initiated stores
// (mirrors), and client-initiated stores (proxy/browser caches). A Web
// document is published at a permanent store with a Strategy (the paper's
// Table 1 parameters + the object-based coherence model); replicas are then
// installed at other stores; clients Open the document at any store, with
// optional client-based coherence models (session guarantees).
//
//	sys := webobj.NewSystem()
//	server, _ := sys.NewServer("www")
//	_ = sys.Publish(server, "conf-page", webobj.ConferenceStrategy(time.Second))
//	cache, _ := sys.NewCache("proxy", server)
//	_ = sys.Replicate(cache, "conf-page", webobj.ReadYourWrites)
//	doc, _ := sys.Open("conf-page", webobj.At(cache), webobj.WithSession(webobj.ReadYourWrites))
//	_ = doc.Append("program.html", []byte("<li>keynote</li>"))
//	page, _ := doc.Get("program.html")
package webobj

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/naming"
	"repro/internal/replication"
	"repro/internal/semantics/webdoc"
	"repro/internal/store"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
)

// ObjectID names a distributed Web document.
type ObjectID = ids.ObjectID

// Strategy is the per-document replication policy (Table 1 of the paper).
type Strategy = strategy.Strategy

// Page is a Web-document page with its version metadata.
type Page = webdoc.Page

// ClientModel is a client-based coherence model (§3.2.2, Bayou session
// guarantees, enforced rather than checked).
type ClientModel = coherence.ClientModel

// Client-based coherence models.
const (
	ReadYourWrites    = coherence.ReadYourWrites
	MonotonicReads    = coherence.MonotonicReads
	MonotonicWrites   = coherence.MonotonicWrites
	WritesFollowReads = coherence.WritesFollowReads
)

// Strategy presets (see internal/strategy for the full parameter space).
var (
	// ConferenceStrategy is Table 2 of the paper: PRAM everywhere, single
	// writer, lazy periodic partial pushes, RYW-capable caches.
	ConferenceStrategy = strategy.Conference
	// PersonalHomePageStrategy suits rarely-shared personal pages.
	PersonalHomePageStrategy = strategy.PersonalHomePage
	// PopularEventPageStrategy suits hot, proxy-replicated pages.
	PopularEventPageStrategy = strategy.PopularEventPage
	// MagazineStrategy suits periodically-published documents.
	MagazineStrategy = strategy.Magazine
	// ForumStrategy suits causally-ordered shared forums.
	ForumStrategy = strategy.Forum
	// WhiteboardStrategy suits concurrent-writer groupware.
	WhiteboardStrategy = strategy.Whiteboard
	// MirroredSiteStrategy suits eventually-synchronised mirrors.
	MirroredSiteStrategy = strategy.MirroredSite
)

// Store is one store process (any layer).
type Store struct {
	name string
	st   *store.Store
	role replication.Role
}

// Name returns the store's name within the system.
func (s *Store) Name() string { return s.name }

// Stats returns the replication protocol counters for one hosted object
// (dissemination rounds, batch frames, demands, parked reads, ...).
func (s *Store) Stats(object ObjectID) (replication.Stats, error) {
	return s.st.Stats(ids.ObjectID(object))
}

// Applied returns the store's applied version vector for one hosted object.
func (s *Store) Applied(object ObjectID) (ids.VersionVec, error) {
	return s.st.Applied(ids.ObjectID(object))
}

// System is one in-process deployment of the framework over a simulated
// network. Safe for concurrent use.
type System struct {
	mu         sync.Mutex
	net        *memnet.Network
	ns         *naming.Service
	stores     map[string]*Store
	parents    map[string]string // store name -> parent store name
	strategies map[ObjectID]Strategy
	nextEP     int
	closed     bool
}

// NewSystem creates a deployment with an instantaneous, lossless network.
// Use NewSystemWithNetwork for latency/loss configurations.
func NewSystem() *System { return NewSystemWithNetwork() }

// NewSystemWithNetwork creates a deployment with memnet options (seed,
// default link profile).
func NewSystemWithNetwork(opts ...memnet.Option) *System {
	return &System{
		net:        memnet.New(opts...),
		ns:         naming.New(),
		stores:     make(map[string]*Store),
		parents:    make(map[string]string),
		strategies: make(map[ObjectID]Strategy),
	}
}

// Network exposes the underlying simulated network (link shaping, traffic
// statistics).
func (s *System) Network() *memnet.Network { return s.net }

// Naming exposes the location service.
func (s *System) Naming() *naming.Service { return s.ns }

// NewServer creates a permanent store (a Web server).
func (s *System) NewServer(name string) (*Store, error) {
	return s.newStore(name, replication.RolePermanent, nil)
}

// NewMirror creates an object-initiated store below parent.
func (s *System) NewMirror(name string, parent *Store) (*Store, error) {
	return s.newStore(name, replication.RoleObjectInitiated, parent)
}

// NewCache creates a client-initiated store below parent.
func (s *System) NewCache(name string, parent *Store) (*Store, error) {
	return s.newStore(name, replication.RoleClientInitiated, parent)
}

func (s *System) newStore(name string, role replication.Role, parent *Store) (*Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("webobj: system closed")
	}
	if _, dup := s.stores[name]; dup {
		return nil, fmt.Errorf("webobj: store %q already exists", name)
	}
	ep, err := s.net.Endpoint("store/" + name)
	if err != nil {
		return nil, err
	}
	st := store.New(store.Config{
		ID:       s.ns.NextStore(),
		Role:     role,
		Endpoint: ep,
	})
	h := &Store{name: name, st: st, role: role}
	s.stores[name] = h
	if parent != nil {
		s.parents[name] = parent.name
	}
	return h, nil
}

// Publish creates a Web document at a permanent store under the given
// strategy and registers it with the location service.
func (s *System) Publish(server *Store, object ObjectID, strat Strategy) error {
	if server.role != replication.RolePermanent {
		return fmt.Errorf("webobj: documents are published at permanent stores, %q is %v", server.name, server.role)
	}
	if err := server.st.Host(store.HostConfig{
		Object: object, Semantics: webdoc.New(), Strat: strat,
	}); err != nil {
		return err
	}
	s.ns.Register(object, naming.Entry{Addr: server.st.Addr(), Store: server.st.ID(), Role: server.role})
	s.mu.Lock()
	s.strategies[object] = strat
	s.mu.Unlock()
	return nil
}

// Replicate installs a replica of a published document at a mirror or
// cache, subscribing it to its parent store. The session models declare
// which client-based guarantees this replica must be able to enforce.
func (s *System) Replicate(at *Store, object ObjectID, session ...ClientModel) error {
	s.mu.Lock()
	parentName, ok := s.parents[at.name]
	var parent *Store
	if ok {
		parent = s.stores[parentName]
	}
	s.mu.Unlock()
	if parent == nil {
		return fmt.Errorf("webobj: store %q has no parent to replicate from", at.name)
	}
	// The replica adopts the object's published strategy, read from the
	// permanent store's registration.
	strat, err := s.publishedStrategy(object)
	if err != nil {
		return err
	}
	if err := at.st.Host(store.HostConfig{
		Object: object, Semantics: webdoc.New(), Strat: strat,
		Parent: parent.st.Addr(), Session: session, Subscribe: true,
	}); err != nil {
		return err
	}
	s.ns.Register(object, naming.Entry{Addr: at.st.Addr(), Store: at.st.ID(), Role: at.role})
	return nil
}

// Peer registers a and b as anti-entropy gossip peers for object, in both
// directions. Gossip only applies to objects replicated under the eventual
// model (mirrored sites); it lets sibling mirrors converge without a
// permanent store on the path. Peering is all-or-nothing: if the second
// registration fails the first is rolled back.
func (s *System) Peer(a, b *Store, object ObjectID) error {
	if err := a.st.AddPeer(ids.ObjectID(object), b.st.Addr()); err != nil {
		return err
	}
	if err := b.st.AddPeer(ids.ObjectID(object), a.st.Addr()); err != nil {
		_ = a.st.RemovePeer(ids.ObjectID(object), b.st.Addr())
		return err
	}
	return nil
}

func (s *System) publishedStrategy(object ObjectID) (Strategy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.strategies[object]
	if !ok {
		return Strategy{}, fmt.Errorf("webobj: object %q not published", object)
	}
	return st, nil
}

// OpenOption configures Open.
type OpenOption func(*openCfg)

type openCfg struct {
	at      *Store
	session []ClientModel
	timeout time.Duration
}

// At binds to a specific store instead of the nearest replica.
func At(st *Store) OpenOption { return func(c *openCfg) { c.at = st } }

// WithSession enables client-based coherence models for this client.
func WithSession(models ...ClientModel) OpenOption {
	return func(c *openCfg) { c.session = append(c.session, models...) }
}

// WithTimeout bounds each remote call.
func WithTimeout(d time.Duration) OpenOption {
	return func(c *openCfg) { c.timeout = d }
}

// Document is a client binding to one distributed Web document.
type Document struct {
	sys   *System
	proxy *core.Proxy
}

// Open binds a new client to the document. Without At, the lowest-layer
// registered replica is chosen (the paper: "it is generally up to the
// client to decide to which replica he will bind").
func (s *System) Open(object ObjectID, opts ...OpenOption) (*Document, error) {
	cfg := openCfg{timeout: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	var addr string
	if cfg.at != nil {
		addr = cfg.at.st.Addr()
	} else {
		entries := s.ns.Lookup(object)
		if len(entries) == 0 {
			return nil, fmt.Errorf("webobj: object %q not registered", object)
		}
		addr = entries[0].Addr
	}
	s.mu.Lock()
	s.nextEP++
	epName := fmt.Sprintf("client/%d", s.nextEP)
	s.mu.Unlock()
	ep, err := s.net.Endpoint(epName)
	if err != nil {
		return nil, err
	}
	p, err := core.Bind(core.BindConfig{
		Object:    object,
		Endpoint:  ep,
		StoreAddr: addr,
		Client:    s.ns.NextClient(),
		Session:   cfg.session,
		Prototype: webdoc.New(),
		Timeout:   cfg.timeout,
	})
	if err != nil {
		return nil, err
	}
	return &Document{sys: s, proxy: p}, nil
}

// Get retrieves a page.
func (d *Document) Get(page string) (*Page, error) {
	out, err := d.proxy.Invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		return nil, err
	}
	return webdoc.DecodePage(out)
}

// Stat retrieves page metadata without content.
func (d *Document) Stat(page string) (*Page, error) {
	out, err := d.proxy.Invoke(msg.Invocation{Method: webdoc.MethodStatPage, Page: page})
	if err != nil {
		return nil, err
	}
	return webdoc.DecodePage(out)
}

// Put replaces a page.
func (d *Document) Put(page string, content []byte, contentType string) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: content, ContentType: contentType, ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := d.proxy.Invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: page, Args: args})
	return err
}

// Append adds content to a page (the paper's incremental update).
func (d *Document) Append(page string, content []byte) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: content, ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := d.proxy.Invoke(msg.Invocation{Method: webdoc.MethodAppendPage, Page: page, Args: args})
	return err
}

// Delete removes a page.
func (d *Document) Delete(page string) error {
	_, err := d.proxy.Invoke(msg.Invocation{Method: webdoc.MethodDeletePage, Page: page})
	return err
}

// Pages lists page names.
func (d *Document) Pages() ([]string, error) {
	out, err := d.proxy.Invoke(msg.Invocation{Method: webdoc.MethodListPages})
	if err != nil {
		return nil, err
	}
	return webdoc.DecodeStrings(out)
}

// Rebind moves this client to another store, keeping session guarantees
// (the Monotonic Reads travelling-client scenario).
func (d *Document) Rebind(at *Store) error { return d.proxy.Rebind(at.st.Addr()) }

// Close releases the binding.
func (d *Document) Close() { d.proxy.Close() }

// Close tears down the whole system: stores first, then the network.
func (s *System) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stores := make([]*Store, 0, len(s.stores))
	for _, st := range s.stores {
		stores = append(stores, st)
	}
	s.mu.Unlock()
	for _, st := range stores {
		_ = st.st.Close()
	}
	return s.net.Close()
}
