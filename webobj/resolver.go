package webobj

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/nameserv"
	"repro/internal/naming"
)

// ClientID identifies a client bound to an object (unique per deployment).
type ClientID = ids.ClientID

// StoreID identifies a store (unique per deployment).
type StoreID = ids.StoreID

// NameEntry is one contact point in a name record: a store holding a
// replica of the object.
type NameEntry = naming.Entry

// NameMeta is the per-object metadata a name record carries: semantics
// type, replication strategy, and supported session models. It is what
// lets a process bind to an object it was never configured for — the
// record, not the client, carries the object's semantics and model.
type NameMeta = naming.Meta

// NameRecord is a full name record: contact points plus metadata plus a
// version that advances on every change.
type NameRecord = naming.Record

// Resolver is the naming/location seam a System resolves through: contact
// points, object metadata, identifier allocation, and client
// write-sequence floors. The default is the in-process naming.Service; a
// networked deployment plugs in the name-service client (WithNameServer)
// so registrations are visible across processes, identifiers are globally
// unique, and AttachObject's manual sem/strat mirroring disappears. The
// System owns its resolver: System.Close closes it.
type Resolver interface {
	// Register upserts one contact point, and — when meta is non-zero —
	// the object's record metadata.
	Register(object ObjectID, e NameEntry, meta NameMeta) error
	// Deregister removes the contact point at addr.
	Deregister(object ObjectID, addr string) error
	// Resolve returns the object's record; it fails when the object is
	// unknown.
	Resolve(object ObjectID) (NameRecord, error)
	// Invalidate drops any cached record for object, forcing the next
	// Resolve to re-fetch (called after a bind to a resolved contact point
	// fails).
	Invalidate(object ObjectID)
	// Pick returns the deterministic default contact point.
	Pick(object ObjectID) (NameEntry, bool)
	// RenewContact refreshes the liveness lease on every record entry
	// registered at addr, returning how many entries were renewed. A
	// successful call renewing zero entries means the directory already
	// expired this contact point: the caller must re-register. Resolvers
	// without leases renew trivially.
	RenewContact(addr string) (uint64, error)

	// NextClient / NextStore allocate deployment-unique identifiers.
	NextClient() (ClientID, error)
	NextStore() (StoreID, error)
	// ReserveClient / ReserveStore pin hand-chosen identifiers so the
	// allocators never hand them out.
	ReserveClient(id ClientID) error
	ReserveStore(id StoreID) error

	// ClientSeqFloor returns the highest write sequence a session using
	// this client identity has reported (zero when unknown);
	// ReportClientSeq raises it. Binds seed the session's write counter
	// from max(bound store's applied vector, this floor), so a reused
	// identity binding a lagging replica does not re-issue covered write
	// IDs.
	ClientSeqFloor(id ClientID) uint64
	ReportClientSeq(id ClientID, seq uint64)

	Close() error
}

// localResolver adapts the in-process naming.Service to the Resolver seam —
// the default for simulations and single-process deployments.
type localResolver struct{ ns *naming.Service }

var _ Resolver = localResolver{}

func (l localResolver) Register(object ObjectID, e NameEntry, meta NameMeta) error {
	l.ns.Register(object, e)
	if meta.Sem != "" || meta.HasStrat || len(meta.Models) > 0 {
		l.ns.SetMeta(object, meta)
	}
	return nil
}

func (l localResolver) Deregister(object ObjectID, addr string) error {
	l.ns.Deregister(object, addr)
	return nil
}

func (l localResolver) Resolve(object ObjectID) (NameRecord, error) {
	rec, ok := l.ns.Record(object)
	if !ok {
		return NameRecord{}, fmt.Errorf("webobj: object %q not registered", object)
	}
	return rec, nil
}

func (l localResolver) Invalidate(ObjectID) {}

func (l localResolver) Pick(object ObjectID) (NameEntry, bool) { return l.ns.Pick(object) }

// RenewContact is trivial locally: in-process registrations have no lease
// to expire, so the contact point is reported alive (non-zero) forever.
func (l localResolver) RenewContact(string) (uint64, error) { return 1, nil }

func (l localResolver) NextClient() (ClientID, error) { return l.ns.NextClient(), nil }
func (l localResolver) NextStore() (StoreID, error)   { return l.ns.NextStore(), nil }

func (l localResolver) ReserveClient(id ClientID) error { return l.ns.ReserveClient(id) }
func (l localResolver) ReserveStore(id StoreID) error   { return l.ns.ReserveStore(id) }

func (l localResolver) ClientSeqFloor(id ClientID) uint64       { return l.ns.ClientSeqFloor(id) }
func (l localResolver) ReportClientSeq(id ClientID, seq uint64) { l.ns.ReportClientSeq(id, seq) }

func (l localResolver) Close() error { return nil }

// nsResolver wraps the name-service client so the interface conversion to
// Resolver is explicit and checked here.
type nsResolver struct{ *nameserv.Client }

var _ Resolver = nsResolver{}
