package webobj

import (
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/transport/tcpnet"
)

// Fabric is the network substrate a System deploys over: anything that can
// mint transport endpoints. The same deployment code runs over an
// in-process simulated network (NewMemFabric) or over real TCP
// (NewTCPFabric); the fabric is the only thing that changes between a
// simulation and a multi-process production deployment.
//
// The System owns the fabric it is built with: System.Close closes it.
type Fabric = transport.Fabric

// NewMemFabric creates an in-process simulated network fabric (instant and
// lossless by default; memnet options configure seed, latency, jitter,
// loss). Store names are used verbatim as simulated addresses, so link
// shaping and partitions address stores as "store/<name>".
func NewMemFabric(opts ...memnet.Option) *memnet.Network { return memnet.New(opts...) }

// TCPOption configures NewTCPFabric (e.g. WithMaxInboundFrame).
type TCPOption = tcpnet.FabricOption

// WithMaxInboundFrame bounds the frames a TCP endpoint accepts from any
// peer: a larger announced frame drops the connection before any body
// allocation. Deployments reachable from beyond loopback should set it to
// a small multiple of their largest expected snapshot.
func WithMaxInboundFrame(n int) TCPOption { return tcpnet.WithMaxInboundFrame(n) }

// NewTCPFabric creates a real-TCP fabric. Stores whose name is a host:port
// listen on exactly that address (the way a daemon pins its advertised
// address); all other endpoints listen on an ephemeral port of host
// ("" = 127.0.0.1).
func NewTCPFabric(host string, opts ...TCPOption) *tcpnet.Fabric {
	return tcpnet.NewFabric(host, opts...)
}
