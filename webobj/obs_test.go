package webobj_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/webobj"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func findPoint(pts []webobj.MetricPoint, name, object string) *webobj.MetricPoint {
	for i := range pts {
		if pts[i].Name == name && pts[i].Labels["object"] == object {
			return &pts[i]
		}
	}
	return nil
}

func TestObservabilityEndToEnd(t *testing.T) {
	sys := webobj.NewSystem(webobj.WithMetrics(), webobj.WithTrace(256))
	t.Cleanup(func() { _ = sys.Close() })

	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, "obs-doc", webobj.WebDoc(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, "obs-doc", webobj.ReadYourWrites); err != nil {
		t.Fatal(err)
	}

	d, err := sys.Open("obs-doc")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 5; i++ {
		if err := d.Put("p", []byte("v"), "text/plain"); err != nil {
			t.Fatal(err)
		}
	}
	// The cache applies the disseminated updates asynchronously; the
	// propagation-lag histogram fills as they land.
	waitFor(t, func() bool {
		lag := findPoint(sys.MetricsSnapshot(), "globe_propagation_lag_seconds", "obs-doc")
		return lag != nil && lag.Hist != nil && lag.Hist.Count >= 5
	}, "propagation-lag samples at the replicas")

	pts := sys.MetricsSnapshot()
	acked := findPoint(pts, "globe_writes_acked_total", "obs-doc")
	if acked == nil || acked.Value < 5 {
		t.Fatalf("globe_writes_acked_total = %+v, want >= 5", acked)
	}
	applied := findPoint(pts, "globe_updates_applied_total", "obs-doc")
	if applied == nil || applied.Value < 5 {
		t.Fatalf("globe_updates_applied_total = %+v, want >= 5", applied)
	}

	// The Prometheus handler serves the same registry as text.
	rr := httptest.NewRecorder()
	sys.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE globe_propagation_lag_seconds histogram",
		"globe_propagation_lag_seconds_bucket",
		"globe_writes_acked_total",
		"globe_transport_frames_sent_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The trace ring holds the write lifecycle.
	types := make(map[string]bool)
	for _, e := range sys.TraceEvents() {
		types[e.Type] = true
	}
	for _, want := range []string{"write_admitted", "write_acked", "update_applied"} {
		if !types[want] {
			t.Errorf("trace missing %q events (have %v)", want, types)
		}
	}
}

func TestObservabilityDisabled(t *testing.T) {
	sys := newSys(t)
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d, err := sys.Open("doc")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("p", []byte("v"), "text/plain"); err != nil {
		t.Fatal(err)
	}

	if sys.Metrics() != nil {
		t.Fatalf("Metrics() non-nil without WithMetrics")
	}
	if pts := sys.MetricsSnapshot(); pts != nil {
		t.Fatalf("MetricsSnapshot = %v without WithMetrics", pts)
	}
	if evs := sys.TraceEvents(); len(evs) != 0 {
		t.Fatalf("TraceEvents = %v without WithTrace", evs)
	}
	// The handler still answers, with an empty exposition.
	rr := httptest.NewRecorder()
	sys.MetricsHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Body.Len() != 0 {
		t.Fatalf("disabled exposition body = %q", rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("disabled exposition Content-Type = %q", ct)
	}
}
