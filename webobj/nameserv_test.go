package webobj

import (
	"strings"
	"testing"
	"time"

	"repro/internal/transport/memnet"
)

// TestNameServiceEndToEndTCP is the cross-process naming e2e over real TCP:
// a name server and two Systems (standing in for two daemons, each with its
// own fabric and therefore its own sockets). A publishes; B opens by name
// alone — no store address, no AttachObject sem/strat mirroring — installs
// a replica wired entirely from the record, drops it, re-registers it, and
// re-resolves. A runtime replica added via the control RPC becomes
// resolvable and serves reads.
func TestNameServiceEndToEndTCP(t *testing.T) {
	ns, err := NewNameServer(NewTCPFabric(""), NameServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	sysA := NewSystem(
		WithFabric(NewTCPFabric("")),
		WithNameServer(ns.Addr()),
		WithDigestInterval(25*time.Millisecond),
	)
	defer sysA.Close()
	server, err := sysA.NewServer("wwwA")
	if err != nil {
		t.Fatal(err)
	}
	const obj = ObjectID("e2e-doc")
	if err := sysA.Publish(server, obj, WebDoc(), ConferenceStrategy(5*time.Millisecond), ReadYourWrites); err != nil {
		t.Fatal(err)
	}

	sysB := NewSystem(
		WithFabric(NewTCPFabric("")),
		WithNameServer(ns.Addr()),
		WithDigestInterval(25*time.Millisecond),
	)
	defer sysB.Close()

	// Publish on A, open via name lookup on B: the record supplies the
	// store address AND the semantics for the bind-time type check.
	if _, err := sysB.OpenMap(obj); err == nil || !strings.Contains(err.Error(), "webdoc") {
		t.Fatalf("typed open against the record did not fail fast: %v", err)
	}
	doc, err := sysB.Open(obj, WithSession(ReadYourWrites))
	if err != nil {
		t.Fatalf("open by name: %v", err)
	}
	if err := doc.Put("index.html", []byte("hello"), "text/html"); err != nil {
		t.Fatal(err)
	}
	pg, err := doc.Get("index.html")
	if err != nil || string(pg.Content) != "hello" {
		t.Fatalf("get = %v, %v", pg, err)
	}
	doc.Close()

	// Install a replica at B wired entirely from the record: semantics,
	// strategy, and parent all come from resolution.
	cache, err := sysB.NewCache("cacheB", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sysB.ResolveName(obj)
	if err != nil {
		t.Fatal(err)
	}
	parentAddr := ParentFromRecord(rec, cache.Addr())
	if parentAddr == "" {
		t.Fatalf("record lists no permanent store: %+v", rec)
	}
	up, err := sysB.AttachServer(parentAddr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sysB.ReplicateFrom(cache, up, obj, ReadYourWrites); err != nil {
		t.Fatal(err)
	}
	waitForContent(t, sysB, cache, obj, "index.html", "hello")

	// The record now lists the replica, and a default pick from a third
	// system chooses it (lowest layer).
	sysC := NewSystem(WithFabric(NewTCPFabric("")), WithNameServer(ns.Addr()))
	defer sysC.Close()
	waitForEntries(t, sysC, obj, 2)
	docC, err := sysC.Open(obj)
	if err != nil {
		t.Fatal(err)
	}
	if docC.StoreAddr() != cache.Addr() {
		t.Fatalf("default pick bound %s, want the cache %s", docC.StoreAddr(), cache.Addr())
	}
	docC.Close()

	// Kill the replica: it disappears from the record, and a fresh open
	// re-resolves to the permanent store.
	if err := sysB.Drop(cache, obj); err != nil {
		t.Fatal(err)
	}
	sysC.Resolver().Invalidate(obj)
	waitForEntries(t, sysC, obj, 1)
	docC2, err := sysC.Open(obj)
	if err != nil {
		t.Fatalf("open after replica death: %v", err)
	}
	if got, err := docC2.Get("index.html"); err != nil || string(got.Content) != "hello" {
		t.Fatalf("read after re-resolve = %v, %v", got, err)
	}
	docC2.Close()

	// Re-register the replica at runtime THROUGH THE CONTROL RPC — the
	// daemon-side path — and it becomes resolvable and serves reads.
	ctlAddr, err := sysB.ServeControl("")
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewControl(NewTCPFabric(""), ctlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.Call(ControlRequest{Op: "host", Store: "cacheB", Object: string(obj), Session: "ryw"}); err != nil {
		t.Fatalf("control host: %v", err)
	}
	waitForContent(t, sysB, cache, obj, "index.html", "hello")
	sysC.Resolver().Invalidate(obj)
	waitForEntries(t, sysC, obj, 2)
	docC3, err := sysC.Open(obj)
	if err != nil {
		t.Fatal(err)
	}
	defer docC3.Close()
	if docC3.StoreAddr() != cache.Addr() {
		t.Fatalf("runtime replica not picked: bound %s, want %s", docC3.StoreAddr(), cache.Addr())
	}
	if got, err := docC3.Get("index.html"); err != nil || string(got.Content) != "hello" {
		t.Fatalf("read at runtime replica = %v, %v", got, err)
	}
}

// waitForContent polls a local replica until a page shows the wanted
// content.
func waitForContent(t *testing.T, sys *System, st *Store, obj ObjectID, page, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		d, err := sys.Open(obj, At(st))
		if err == nil {
			pg, gerr := d.Get(page)
			d.Close()
			if gerr == nil && string(pg.Content) == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never served %q=%q", st.Addr(), page, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitForEntries polls resolution until the record lists n live entries.
func waitForEntries(t *testing.T, sys *System, obj ObjectID, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		sys.Resolver().Invalidate(obj)
		rec, err := sys.ResolveName(obj)
		if err == nil && len(rec.Entries) == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("record never reached %d entries: %+v (err %v)", n, rec, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReusedIdentityResumesPastLaggingReplica is the covered-write-ID
// regression: a returning client that pins its identity and binds a replica
// that LAGS its previous writes must not re-issue their write IDs (stores
// would silently absorb the re-issues as replays, losing the new writes).
// The resolver's write-sequence floor — reported when the previous session
// closed — is what closes the hole: binds seed from max(bound store's
// applied vector, floor).
func TestReusedIdentityResumesPastLaggingReplica(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	const obj = ObjectID("resume-doc")
	// A very long lazy interval keeps the cache lagging: nothing is pushed
	// during the test, so the cache's applied vector stays at the bootstrap
	// snapshot (empty).
	if err := sys.Publish(server, obj, WebDoc(), ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		t.Fatal(err)
	}

	// Session 1: three writes at the permanent store, then close (which
	// reports the floor to the resolver).
	const pinned = 777
	doc1, err := sys.Open(obj, At(server), AsClient(pinned))
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []string{"A1;", "A2;", "A3;"} {
		if err := doc1.Append("p", []byte(tok)); err != nil {
			t.Fatal(err)
		}
	}
	doc1.Close()
	if got := sys.Naming().ClientSeqFloor(pinned); got != 3 {
		t.Fatalf("floor after close = %d, want 3", got)
	}

	// Session 2: same identity, bound at the LAGGING cache (applied vector
	// empty). Without the floor the bind would seed seq 0 and the next
	// write would reuse WiD (777,1) — absorbed upstream as a replay.
	doc2, err := sys.Open(obj, At(cache), AsClient(pinned))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc2.Append("p", []byte("B1;")); err != nil {
		t.Fatal(err)
	}
	doc2.Close()

	// The new write must exist at the permanent store alongside the old
	// ones — not silently deduplicated.
	doc3, err := sys.Open(obj, At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer doc3.Close()
	pg, err := doc3.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(pg.Content); got != "A1;A2;A3;B1;" {
		t.Fatalf("permanent store content = %q, want the reused identity's new write applied (A1;A2;A3;B1;)", got)
	}
}

// TestSubscribeSurvivesLoss hosts a replica over a link that is already
// lossy when the subscribe handshake runs: the ack + bounded retry (and
// digest-triggered re-subscribe) must get the replica into the children set
// and converged without any clean-network warm-up.
func TestSubscribeSurvivesLoss(t *testing.T) {
	sys := NewSystemWithNetwork(memnet.WithSeed(1))
	defer sys.Close()
	net := sys.Network()
	// Hostile from the very first frame — the subscribe itself runs under
	// 60% loss.
	net.SetLinkBoth("store/www", "store/proxy", memnet.LinkProfile{
		Latency: 100 * time.Microsecond,
		Jitter:  200 * time.Microsecond,
		Loss:    0.6,
	})

	server, err := sys.NewServer("www", WithStoreDigestInterval(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	const obj = ObjectID("lossy-doc")
	if err := sys.Publish(server, obj, WebDoc(), WhiteboardStrategy()); err != nil {
		t.Fatal(err)
	}
	if err := doWrite(sys, obj, server, "p", "hello;"); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server, WithStoreDigestInterval(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		t.Fatal(err)
	}
	if err := doWrite(sys, obj, server, "p", "world;"); err != nil {
		t.Fatal(err)
	}
	waitForContent(t, sys, cache, obj, "p", "hello;world;")
	// The scenario must actually have exercised the retry path — a seed
	// whose first subscribe (or its ack) landed cleanly would make this
	// test vacuous.
	stats, err := cache.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SubscribesSent < 2 {
		t.Fatalf("subscribe retry never fired (SubscribesSent=%d); pick a seed whose first subscribe is lost", stats.SubscribesSent)
	}
}

// doWrite appends one token through a fresh client bound at st, retrying
// timeouts (client links are clean here, but the forwarded write path may
// cross lossy store links in other tests).
func doWrite(sys *System, obj ObjectID, st *Store, page, tok string) error {
	d, err := sys.Open(obj, At(st), WithTimeout(2*time.Second))
	if err != nil {
		return err
	}
	defer d.Close()
	var werr error
	for i := 0; i < 10; i++ {
		if werr = d.Append(page, []byte(tok)); werr == nil {
			return nil
		}
	}
	return werr
}
