package webobj

import (
	"net/http"
	"sort"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/memnet"
	"repro/internal/transport/tcpnet"
)

// MetricsRegistry is the metrics registry behind WithMetrics: atomic
// counters, gauges, and HDR histograms, exposed as Prometheus text
// (System.MetricsHandler), JSON snapshots (System.MetricsSnapshot, globectl
// ctl metrics), or direct reads in tests.
type MetricsRegistry = obs.Registry

// MetricPoint is one series in a metrics snapshot.
type MetricPoint = obs.Point

// TraceEvent is one entry of the write-lifecycle trace ring (WithTrace).
type TraceEvent = obs.Event

// WithMetrics turns on the metrics registry for this system: every store it
// creates registers per-replica replication, WAL, and propagation-lag
// series, and the fabric's and name-service client's traffic counters are
// bridged in at scrape time. Off by default — the instrumented hot paths
// then cost one nil check and zero allocations per event.
func WithMetrics() SystemOption {
	return func(s *System) { s.metricsOn = true }
}

// WithTrace turns on the write-lifecycle event trace: a fixed-size
// lock-free ring holding the last n events (admitted, sequenced, shipped,
// applied, acked, demands, reparents, recoveries) across every store this
// system creates. Independent of WithMetrics. n is clamped to at least 16.
func WithTrace(n int) SystemOption {
	return func(s *System) { s.traceN = n }
}

// initObs builds the system's Observer after options, fabric, and resolver
// are settled, and bridges the pre-existing transport and name-service
// counters into the registry as scrape-time funcs.
func (s *System) initObs() {
	if !s.metricsOn && s.traceN <= 0 {
		return
	}
	s.obsv = &obs.Observer{}
	if s.traceN > 0 {
		s.obsv.Trace = obs.NewTrace(s.traceN)
	}
	if !s.metricsOn {
		return
	}
	reg := obs.NewRegistry()
	s.obsv.Reg = reg
	if src, ok := s.fabric.(transport.StatsSource); ok {
		name := fabricName(s.fabric)
		keys := make([]string, 0, 8)
		for k := range src.StatsMap() {
			keys = append(keys, k)
		}
		sort.Strings(keys) // registration order is exposition order
		for _, k := range keys {
			k := k
			reg.CounterFunc("globe_transport_"+k+"_total",
				"transport traffic counter ("+k+")",
				func() float64 { return float64(src.StatsMap()[k]) },
				obs.L("fabric", name))
		}
	}
	if ns, ok := s.res.(nsResolver); ok {
		reg.CounterFunc("globe_nameserv_resolve_hits_total",
			"name resolves answered from the client cache",
			func() float64 { return float64(ns.Stats().ResolveHits) })
		reg.CounterFunc("globe_nameserv_resolve_misses_total",
			"name resolves that cost a server round trip",
			func() float64 { return float64(ns.Stats().ResolveMisses) })
		reg.CounterFunc("globe_nameserv_lease_renewals_total",
			"successful contact-lease renewal round trips",
			func() float64 { return float64(ns.Stats().LeaseRenewalsSent) })
		reg.CounterFunc("globe_nameserv_records_expired_total",
			"directory entries the answering server has expired (lifetime)",
			func() float64 { return float64(ns.Stats().RecordsExpired) })
	}
}

// fabricName labels bridged transport series by substrate.
func fabricName(f Fabric) string {
	switch f.(type) {
	case *memnet.Network:
		return "memnet"
	case *tcpnet.Fabric:
		return "tcpnet"
	}
	return "custom"
}

// Metrics returns the system's registry, or nil without WithMetrics. The
// registry is safe for concurrent use; tests can Find series directly.
func (s *System) Metrics() *MetricsRegistry { return s.obsv.Registry() }

// MetricsSnapshot returns every registered series with its current value
// (the payload of globectl ctl metrics). Nil without WithMetrics.
func (s *System) MetricsSnapshot() []MetricPoint { return s.obsv.Registry().Snapshot() }

// MetricsHandler returns an http.Handler serving the registry in Prometheus
// text exposition format (globed mounts it at /metrics when -metrics-addr
// is set). Without WithMetrics the handler serves an empty exposition.
func (s *System) MetricsHandler() http.Handler {
	if reg := s.obsv.Registry(); reg != nil {
		return reg.Handler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	})
}

// TraceEvents returns the trace ring's current contents, oldest first.
// Empty without WithTrace.
func (s *System) TraceEvents() []TraceEvent { return s.obsv.Tracer().Events() }
