package webobj_test

import (
	"strings"
	"testing"
	"time"

	"repro/webobj"
)

func newSys(t *testing.T) *webobj.System {
	t.Helper()
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func TestPublishOpenPutGet(t *testing.T) {
	sys := newSys(t)
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, "doc", webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d, err := sys.Open("doc")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("p", []byte("hello"), "text/plain"); err != nil {
		t.Fatal(err)
	}
	pg, err := d.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "hello" || pg.ContentType != "text/plain" || pg.Version != 1 {
		t.Fatalf("page = %+v", pg)
	}
	st, err := d.Stat("p")
	if err != nil || st.Version != 1 || st.Content != nil {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	pages, err := d.Pages()
	if err != nil || len(pages) != 1 || pages[0] != "p" {
		t.Fatalf("pages = %v, %v", pages, err)
	}
	if err := d.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("p"); err == nil {
		t.Fatalf("deleted page still readable")
	}
}

func TestPublishRequiresPermanentStore(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("c", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(cache, "doc2", webobj.ConferenceStrategy(time.Hour)); err == nil {
		t.Fatalf("publish at cache accepted")
	}
}

func TestReplicateNeedsParentAndPublication(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Replicate(server, "doc"); err == nil {
		t.Fatalf("replicate at parentless store accepted")
	}
	cache, _ := sys.NewCache("c", server)
	if err := sys.Replicate(cache, "unpublished"); err == nil {
		t.Fatalf("replicate of unpublished object accepted")
	}
}

func TestDuplicateStoreNames(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.NewServer("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewServer("x"); err == nil {
		t.Fatalf("duplicate store name accepted")
	}
}

func TestOpenUnknownObject(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.Open("nothing"); err == nil {
		t.Fatalf("open of unknown object succeeded")
	}
}

func TestAppendAndReplication(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.ConferenceStrategy(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, "doc", webobj.ReadYourWrites); err != nil {
		t.Fatal(err)
	}
	// Writer through the cache with RYW: reads its own appends immediately.
	w, err := sys.Open("doc", webobj.At(cache), webobj.WithSession(webobj.ReadYourWrites))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append("log", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("log", []byte("b")); err != nil {
		t.Fatal(err)
	}
	pg, err := w.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "ab" {
		t.Fatalf("RYW append read %q", pg.Content)
	}
}

func TestRebindKeepsSession(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.MirroredSiteStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(mirror, "doc", webobj.MonotonicReads); err != nil {
		t.Fatal(err)
	}
	c, err := sys.Open("doc", webobj.At(server), webobj.WithSession(webobj.MonotonicReads))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("p", []byte("v1"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("p"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(mirror); err != nil {
		t.Fatal(err)
	}
	pg, err := c.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if pg.Version < 1 {
		t.Fatalf("monotonic reads lost after rebind: %+v", pg)
	}
}

func TestNetworkAndNamingAccessors(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if sys.Network() == nil || sys.Naming() == nil {
		t.Fatalf("accessors nil")
	}
	if server.Name() != "www" {
		t.Fatalf("store name %q", server.Name())
	}
	entries := sys.Naming().Lookup("doc")
	if len(entries) != 1 || !strings.Contains(entries[0].Addr, "www") {
		t.Fatalf("naming entries %+v", entries)
	}
	d, err := sys.Open("doc")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("p", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if s := sys.Network().Stats(); s.Sent == 0 {
		t.Fatalf("network stats empty")
	}
}

func TestSystemCloseIdempotent(t *testing.T) {
	sys := webobj.NewSystem()
	if _, err := sys.NewServer("a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := sys.NewServer("b"); err == nil {
		t.Fatalf("store creation after close accepted")
	}
}
