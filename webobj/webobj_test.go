package webobj_test

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coherence"
	"repro/internal/msg"
	"repro/internal/strategy"
	"repro/internal/transport/memnet"
	"repro/webobj"
)

func newSys(t *testing.T) *webobj.System {
	t.Helper()
	sys := webobj.NewSystem()
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func TestPublishOpenPutGet(t *testing.T) {
	sys := newSys(t)
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d, err := sys.Open("doc")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("p", []byte("hello"), "text/plain"); err != nil {
		t.Fatal(err)
	}
	pg, err := d.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "hello" || pg.ContentType != "text/plain" || pg.Version != 1 {
		t.Fatalf("page = %+v", pg)
	}
	st, err := d.Stat("p")
	if err != nil || st.Version != 1 || st.Content != nil {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	pages, err := d.Pages()
	if err != nil || len(pages) != 1 || pages[0] != "p" {
		t.Fatalf("pages = %v, %v", pages, err)
	}
	if err := d.Delete("p"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("p"); err == nil {
		t.Fatalf("deleted page still readable")
	}
}

func TestPublishRequiresPermanentStore(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("c", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(cache, "doc2", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err == nil {
		t.Fatalf("publish at cache accepted")
	}
}

func TestReplicateNeedsParentAndPublication(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Replicate(server, "doc"); err == nil {
		t.Fatalf("replicate at parentless store accepted")
	}
	cache, _ := sys.NewCache("c", server)
	if err := sys.Replicate(cache, "unpublished"); err == nil {
		t.Fatalf("replicate of unpublished object accepted")
	}
}

func TestDuplicateStoreNames(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.NewServer("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewServer("x"); err == nil {
		t.Fatalf("duplicate store name accepted")
	}
}

func TestOpenUnknownObject(t *testing.T) {
	sys := newSys(t)
	if _, err := sys.Open("nothing"); err == nil {
		t.Fatalf("open of unknown object succeeded")
	}
}

func TestAppendAndReplication(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, "doc", webobj.ReadYourWrites); err != nil {
		t.Fatal(err)
	}
	// Writer through the cache with RYW: reads its own appends immediately.
	w, err := sys.Open("doc", webobj.At(cache), webobj.WithSession(webobj.ReadYourWrites))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append("log", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("log", []byte("b")); err != nil {
		t.Fatal(err)
	}
	pg, err := w.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "ab" {
		t.Fatalf("RYW append read %q", pg.Content)
	}
}

func TestRebindKeepsSession(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.MirroredSiteStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(mirror, "doc", webobj.MonotonicReads); err != nil {
		t.Fatal(err)
	}
	c, err := sys.Open("doc", webobj.At(server), webobj.WithSession(webobj.MonotonicReads))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put("p", []byte("v1"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("p"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rebind(mirror); err != nil {
		t.Fatal(err)
	}
	pg, err := c.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if pg.Version < 1 {
		t.Fatalf("monotonic reads lost after rebind: %+v", pg)
	}
}

func TestNetworkAndNamingAccessors(t *testing.T) {
	sys := newSys(t)
	server, _ := sys.NewServer("www")
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if sys.Network() == nil || sys.Naming() == nil {
		t.Fatalf("accessors nil")
	}
	if server.Name() != "www" {
		t.Fatalf("store name %q", server.Name())
	}
	entries := sys.Naming().Lookup("doc")
	if len(entries) != 1 || !strings.Contains(entries[0].Addr, "www") {
		t.Fatalf("naming entries %+v", entries)
	}
	d, err := sys.Open("doc")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("p", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if s := sys.Network().Stats(); s.Sent == 0 {
		t.Fatalf("network stats empty")
	}
}

func TestSystemCloseIdempotent(t *testing.T) {
	sys := webobj.NewSystem()
	if _, err := sys.NewServer("a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := sys.NewServer("b"); err == nil {
		t.Fatalf("store creation after close accepted")
	}
}

// TestDeepHierarchyPreservesBatches drives a three-level chain (server →
// mirror → cache): a partition makes the mirror miss a burst of writes, the
// next write after healing exposes the gap, the mirror demands, and the
// server replays the burst as one KindUpdateBatch frame. The mirror must
// relay the released updates to the cache as one batch frame too — one frame
// per hop, asserted via msg.EncodeHook.
func TestDeepHierarchyPreservesBatches(t *testing.T) {
	st := webobj.Strategy{
		Model:             coherence.PRAM,
		Propagation:       strategy.PropagateUpdate,
		Scope:             strategy.ScopeAll,
		Writers:           strategy.SingleWriter,
		Initiative:        strategy.Push,
		Instant:           strategy.Immediate,
		AccessTransfer:    strategy.TransferPartial,
		CoherenceTransfer: strategy.CoherencePartial,
		ObjectOutdate:     strategy.Demand,
		ClientOutdate:     strategy.Demand,
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := webobj.NewSystemWithNetwork(memnet.WithSeed(1))
	t.Cleanup(func() { _ = sys.Close() })
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	const obj = webobj.ObjectID("chain-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), st); err != nil {
		t.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(mirror, obj); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", mirror)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		t.Fatal(err)
	}
	writer, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	waitChainCovers := func() {
		t.Helper()
		want, err := server.Applied(obj)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			got, err := cache.Applied(obj)
			if err == nil && got.Covers(want) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("cache did not converge: have %v want %v", got, want)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	if err := writer.Append("log", []byte("seed")); err != nil {
		t.Fatal(err)
	}
	waitChainCovers()

	// The mirror misses a burst of writes behind a partition.
	const gap = 16
	sys.Network().Partition("store/www", "store/mirror")
	for i := 0; i < gap; i++ {
		if err := writer.Append("log", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	sys.Network().Heal("store/www", "store/mirror")

	var singles, batchFrames, batchedUpdates atomic.Int64
	msg.EncodeHook = func(m *msg.Message) {
		switch m.Kind {
		case msg.KindUpdate:
			singles.Add(1)
		case msg.KindUpdateBatch:
			batchFrames.Add(1)
			batchedUpdates.Add(int64(len(m.Batch)))
		}
	}
	defer func() { msg.EncodeHook = nil }()

	// The next write exposes the gap; demand replay + relay follow.
	if err := writer.Append("log", []byte("trigger")); err != nil {
		t.Fatal(err)
	}
	waitChainCovers()
	msg.EncodeHook = nil

	// One frame per hop: the server→mirror replay batch and the
	// mirror→cache relay batch; the only KindUpdate single is the trigger's
	// immediate push.
	if got := batchFrames.Load(); got != 2 {
		t.Fatalf("want 1 batch frame per hop (2 total), got %d", got)
	}
	if got := batchedUpdates.Load(); got != 2*(gap+1) {
		t.Fatalf("batched updates = %d, want %d per hop", got, 2*(gap+1))
	}
	if got := singles.Load(); got != 1 {
		t.Fatalf("KindUpdate singles = %d, want 1 (the trigger push)", got)
	}
	// The burst content arrived intact at the cache.
	reader, err := sys.Open(obj, webobj.At(cache))
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	pg, err := reader.Get("log")
	if err != nil {
		t.Fatal(err)
	}
	if pg.Version != gap+2 {
		t.Fatalf("cache page version = %d, want %d", pg.Version, gap+2)
	}
}
