package webobj

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/nameserv"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// ControlRequest is the daemon control RPC: host or drop a replica at
// runtime in a running System (typically a globed daemon). It travels
// JSON-encoded in a KindCtrlRequest frame.
type ControlRequest struct {
	// Op is "host", "drop", "stats", "metrics", or "trace". The metrics and
	// trace ops are daemon-wide (no object): they return the registry
	// snapshot and the trace ring respectively, empty unless the daemon was
	// built with WithMetrics / WithTrace.
	Op string `json:"op"`
	// Store names the daemon store to act on ("" = the daemon's only
	// store; an error if it has several).
	Store string `json:"store,omitempty"`
	// Object is the object to host or drop.
	Object string `json:"object"`
	// Publish makes the store the object's publisher (permanent stores
	// only); otherwise a replica is installed, with semantics and strategy
	// resolved from the name record.
	Publish bool `json:"publish,omitempty"`
	// Semantics/Strategy configure a publication ("webdoc"/"kv"/"applog";
	// a preset name or a strategy.Marshal text). Replicas resolve both
	// from the record and leave these empty.
	Semantics string `json:"semantics,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	// Session lists the client models the replica must support
	// ("ryw,mr,...").
	Session string `json:"session,omitempty"`
	// Parent overrides the replica's upstream store address; empty picks
	// the record's permanent entry.
	Parent string `json:"parent,omitempty"`
}

// StrategyBySpec resolves a strategy flag/manifest value: a preset name
// ("conference", "whiteboard", ...) or a full strategy.Marshal text
// ("model=pram,prop=1,...").
func StrategyBySpec(spec string) (Strategy, error) {
	if s, ok := StrategyPresets()[spec]; ok {
		return s, nil
	}
	s, err := strategy.Parse(spec)
	if err != nil {
		return Strategy{}, fmt.Errorf("webobj: strategy %q is neither a preset nor a strategy text: %w", spec, err)
	}
	return s, nil
}

// ServeControl starts a control listener on this system's fabric: a
// lightweight RPC surface through which a running daemon hosts and drops
// replicas (globed's -control flag; globectl's ctl subcommands). hint pins
// the listen address on TCP fabrics. It returns the resolved address.
func (s *System) ServeControl(hint string) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", errors.New("webobj: system closed")
	}
	s.mu.Unlock()
	ep, err := s.fabric.Endpoint("ctl/" + hint)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ctlEps = append(s.ctlEps, ep)
	s.mu.Unlock()
	go func() {
		for m := range ep.Recv() {
			if m.Kind != msg.KindCtrlRequest {
				continue
			}
			r := m.Reply(msg.KindCtrlReply)
			r.From = ep.Addr()
			out, err := s.handleControl(m.Payload)
			if err != nil {
				r.Status = msg.StatusError
				r.Err = err.Error()
			} else {
				r.Payload = out
			}
			_ = ep.Send(m.From, r)
		}
	}()
	return ep.Addr(), nil
}

// ControlStats is the payload of a "stats" control reply: one replica's
// replication counters (including re-parenting: ReparentsDone,
// ParentMissedDigests), durability state, applied version vector, and —
// when the daemon resolves through a networked name service — its lease
// liveness counters.
type ControlStats struct {
	Store      string                     `json:"store"`
	Object     string                     `json:"object"`
	Stats      replication.Stats          `json:"stats"`
	Durability replication.DurabilityInfo `json:"durability"`
	Applied    ids.VersionVec             `json:"applied,omitempty"`
	// Naming carries the daemon's name-service client counters
	// (lease renewals sent, resolve cache hits/misses, directory records
	// expired); nil when the daemon resolves in-process.
	Naming *nameserv.ClientStats `json:"naming,omitempty"`
	// Transport carries the fabric's traffic counters (frames, bytes,
	// dials/redials on TCP); nil when the fabric exposes none.
	Transport map[string]uint64 `json:"transport,omitempty"`
	// WalSyncP99Seconds and WalGroupCommitP99 summarise the replica's WAL
	// histograms (fsync barrier latency; acks retired per barrier). Present
	// only when the daemon runs WithMetrics and the replica is durable.
	WalSyncP99Seconds float64 `json:"wal_sync_p99_seconds,omitempty"`
	WalGroupCommitP99 float64 `json:"wal_group_commit_p99,omitempty"`
}

// handleControl executes one control command against this system. The
// returned payload is op-specific (nil for host/drop, JSON for stats).
func (s *System) handleControl(payload []byte) ([]byte, error) {
	var req ControlRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("bad control payload: %w", err)
	}
	// Daemon-wide ops first: they address the whole system, not a replica.
	switch req.Op {
	case "metrics":
		return json.Marshal(s.MetricsSnapshot())
	case "trace":
		return json.Marshal(s.TraceEvents())
	}
	if req.Object == "" {
		return nil, errors.New("control request needs an object")
	}
	st, err := s.controlStore(req.Store)
	if err != nil {
		return nil, err
	}
	obj := ObjectID(req.Object)
	switch req.Op {
	case "drop":
		return nil, s.Drop(st, obj)
	case "stats":
		return s.controlStats(st, obj)
	case "host":
		models, err := ClientModelsByNames(req.Session)
		if err != nil {
			return nil, err
		}
		if req.Publish {
			sem, err := SemanticsByName(req.Semantics)
			if err != nil {
				return nil, err
			}
			strat, err := StrategyBySpec(req.Strategy)
			if err != nil {
				return nil, err
			}
			return nil, s.Publish(st, obj, sem, strat, models...)
		}
		parent, err := s.controlParent(st, obj, req.Parent)
		if err != nil {
			return nil, err
		}
		return nil, s.ReplicateFrom(st, parent, obj, models...)
	default:
		return nil, fmt.Errorf("unknown control op %q (want host|drop|stats|metrics|trace)", req.Op)
	}
}

// controlStats answers the "stats" op for one hosted replica.
func (s *System) controlStats(st *Store, obj ObjectID) ([]byte, error) {
	if st.Remote() {
		return nil, fmt.Errorf("store %q is attached, not hosted here", st.name)
	}
	stats, err := st.st.Stats(obj)
	if err != nil {
		return nil, err
	}
	dur, err := st.st.Durability(obj)
	if err != nil {
		return nil, err
	}
	applied, err := st.st.Applied(obj)
	if err != nil {
		return nil, err
	}
	out := ControlStats{
		Store:      st.name,
		Object:     string(obj),
		Stats:      stats,
		Durability: dur,
		Applied:    applied,
	}
	if ns, ok := s.res.(nsResolver); ok {
		cs := ns.Stats()
		out.Naming = &cs
	}
	if src, ok := s.fabric.(transport.StatsSource); ok {
		out.Transport = src.StatsMap()
	}
	if reg := s.obsv.Registry(); reg != nil {
		ls := []obs.Label{
			obs.L("store", strconv.FormatUint(uint64(st.st.ID()), 10)),
			obs.L("object", string(obj)),
		}
		if p := reg.Find("globe_wal_sync_seconds", ls...); p != nil && p.Hist != nil {
			out.WalSyncP99Seconds = p.Hist.P99
		}
		if p := reg.Find("globe_wal_group_commit_size", ls...); p != nil && p.Hist != nil {
			out.WalGroupCommitP99 = p.Hist.P99
		}
	}
	return json.Marshal(out)
}

// controlStore resolves the target store of a control request.
func (s *System) controlStore(name string) (*Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name != "" {
		st, ok := s.stores[name]
		if !ok {
			return nil, fmt.Errorf("no store %q in this daemon", name)
		}
		return st, nil
	}
	var only *Store
	for _, st := range s.stores {
		if st.Remote() {
			continue
		}
		if only != nil {
			return nil, errors.New("daemon hosts several stores; name one with \"store\"")
		}
		only = st
	}
	if only == nil {
		return nil, errors.New("daemon hosts no local store")
	}
	return only, nil
}

// controlParent picks the upstream store for a runtime replica: the
// explicit address, the store's creation-time parent, or the name record's
// permanent entry.
func (s *System) controlParent(st *Store, obj ObjectID, addr string) (*Store, error) {
	if addr == "" {
		s.mu.Lock()
		parentName, has := s.parents[st.name]
		parent := s.stores[parentName]
		s.mu.Unlock()
		if has && parent != nil {
			return parent, nil
		}
		rec, err := s.res.Resolve(obj)
		if err != nil {
			return nil, fmt.Errorf("no parent given and record unresolvable: %w", err)
		}
		addr = ParentFromRecord(rec, st.Addr())
		if addr == "" {
			return nil, fmt.Errorf("record for %q lists no permanent store to replicate from", obj)
		}
	}
	return s.attachOrReuse(addr)
}

// ParentFromRecord picks the replication parent a name record suggests: the
// object's permanent entry, skipping selfAddr. Empty when the record lists
// none. Daemons use it to auto-wire replicas from resolution alone.
func ParentFromRecord(rec NameRecord, selfAddr string) string {
	for _, e := range rec.Entries {
		if e.Role == replication.RolePermanent && e.Addr != selfAddr {
			return e.Addr
		}
	}
	return ""
}

// attachOrReuse returns the attached handle for addr, attaching it fresh
// when this system has not seen it before.
func (s *System) attachOrReuse(addr string) (*Store, error) {
	s.mu.Lock()
	if st, ok := s.stores[addr]; ok {
		s.mu.Unlock()
		return st, nil
	}
	s.mu.Unlock()
	return s.AttachServer(addr)
}

// ControlClient drives a daemon's control listener from another process.
type ControlClient struct {
	demux   *transport.Demux
	addr    string
	timeout time.Duration
}

// NewControl connects a control client to the daemon control listener at
// addr over fabric f (the caller keeps ownership of the fabric).
func NewControl(f Fabric, addr string) (*ControlClient, error) {
	ep, err := f.Endpoint("ctlc")
	if err != nil {
		return nil, err
	}
	return &ControlClient{
		demux:   transport.NewDemux(ep),
		addr:    addr,
		timeout: 5 * time.Second,
	}, nil
}

// Call executes one control request and returns the daemon's verdict.
func (c *ControlClient) Call(req ControlRequest) error {
	_, err := c.CallPayload(req)
	return err
}

// CallPayload executes one control request and returns the reply payload
// (ops like "stats" answer with JSON; host/drop answer empty).
func (c *ControlClient) CallPayload(req ControlRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	r, err := c.demux.Call(c.addr, &msg.Message{
		Kind:    msg.KindCtrlRequest,
		Payload: payload,
	}, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("webobj: control call to %s: %w", c.addr, err)
	}
	if r.Status != msg.StatusOK {
		return nil, fmt.Errorf("webobj: control %s %q: %s", req.Op, req.Object, r.Err)
	}
	return r.Payload, nil
}

// Stats fetches one replica's counters, durability state, and applied
// vector from a daemon.
func (c *ControlClient) Stats(storeName, object string) (ControlStats, error) {
	var out ControlStats
	payload, err := c.CallPayload(ControlRequest{Op: "stats", Store: storeName, Object: object})
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return out, fmt.Errorf("webobj: bad stats payload from %s: %w", c.addr, err)
	}
	return out, nil
}

// Metrics fetches the daemon's full metrics snapshot (empty unless the
// daemon runs WithMetrics).
func (c *ControlClient) Metrics() ([]MetricPoint, error) {
	payload, err := c.CallPayload(ControlRequest{Op: "metrics"})
	if err != nil {
		return nil, err
	}
	var out []MetricPoint
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("webobj: bad metrics payload from %s: %w", c.addr, err)
	}
	return out, nil
}

// Trace fetches the daemon's trace ring, oldest first (empty unless the
// daemon runs WithTrace).
func (c *ControlClient) Trace() ([]TraceEvent, error) {
	payload, err := c.CallPayload(ControlRequest{Op: "trace"})
	if err != nil {
		return nil, err
	}
	var out []TraceEvent
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("webobj: bad trace payload from %s: %w", c.addr, err)
	}
	return out, nil
}

// Close releases the control client and its endpoint.
func (c *ControlClient) Close() error { return c.demux.Close() }
