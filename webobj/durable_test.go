package webobj_test

import (
	"strings"
	"testing"
	"time"

	"repro/webobj"
)

// A full public-API round trip through durability: a system publishes over
// a data dir, writes, reports durable state through the control RPC, shuts
// down, and a second system over the same data dir recovers everything —
// including the reused client identity's write-sequence floor, so the same
// client keeps writing without colliding with its own recovered WiDs.
func TestSystemRestartRecoversFromDataDir(t *testing.T) {
	dir := t.TempDir()
	mf := webobj.NewMemFabric()
	sys1 := webobj.NewSystem(
		webobj.WithFabric(mf),
		webobj.WithDataDir(dir),
		webobj.WithDurability(webobj.Durability{Fsync: webobj.FsyncAlways}),
	)
	server, err := sys1.NewServer("www", webobj.WithStoreID(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys1.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d1, err := sys1.Open("doc", webobj.AsClient(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Append("p", []byte("first.")); err != nil {
		t.Fatal(err)
	}
	if err := d1.Append("p", []byte("second.")); err != nil {
		t.Fatal(err)
	}

	// Durability state is visible through the daemon control RPC.
	ctlAddr, err := sys1.ServeControl("ctl1")
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := webobj.NewControl(mf, ctlAddr)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ctl.Stats("", "doc")
	if err != nil {
		t.Fatal(err)
	}
	_ = ctl.Close()
	if !stats.Durability.Durable || stats.Durability.WALRecords == 0 {
		t.Fatalf("control stats report no durability: %+v", stats.Durability)
	}
	if stats.Stats.WALAppends == 0 || stats.Applied[77] != 2 {
		t.Fatalf("control stats: %+v", stats)
	}
	d1.Close()
	if err := sys1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh system over the same data dir with the same store
	// identity recovers the object from snapshot + WAL.
	sys2 := webobj.NewSystem(
		webobj.WithDataDir(dir),
		webobj.WithDurability(webobj.Durability{Fsync: webobj.FsyncAlways}),
	)
	defer sys2.Close()
	server2, err := sys2.NewServer("www", webobj.WithStoreID(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Publish(server2, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d2, err := sys2.Open("doc", webobj.AsClient(77))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	pg, err := d2.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "first.second." {
		t.Fatalf("recovered content = %q", pg.Content)
	}
	// The reused identity's write sequence is floored past the recovered
	// writes: if it restarted at 1, this write would classify as a replay
	// of WiD (77,1) and silently never apply.
	if err := d2.Append("p", []byte("third.")); err != nil {
		t.Fatal(err)
	}
	pg, err = d2.Get("p")
	if err != nil {
		t.Fatal(err)
	}
	if string(pg.Content) != "first.second.third." {
		t.Fatalf("post-restart write lost: content = %q", pg.Content)
	}
}

// Durability knobs stay out of memory-only systems: without WithDataDir the
// control RPC reports non-durable replicas.
func TestStatsReportsMemoryOnlyWithoutDataDir(t *testing.T) {
	mf := webobj.NewMemFabric()
	sys := webobj.NewSystem(webobj.WithFabric(mf))
	defer sys.Close()
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	ctlAddr, err := sys.ServeControl("ctl")
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := webobj.NewControl(mf, ctlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	stats, err := ctl.Stats("", "doc")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Durability.Durable {
		t.Fatalf("memory-only store claims durability: %+v", stats.Durability)
	}
	// Unknown objects answer an error, not a panic or empty payload.
	if _, err := ctl.Stats("", "nope"); err == nil || !strings.Contains(err.Error(), "not hosted") {
		t.Fatalf("stats for unhosted object: %v", err)
	}
}

// A durable system still deploys mirrors and caches: the data dir is scoped
// to the permanent stores that can honour it (store.Host rejects a DataDir
// on other roles), so replication trees of a durable deployment come up
// memory-only at the edges instead of failing.
func TestDurableSystemStillCreatesMirrorsAndCaches(t *testing.T) {
	dir := t.TempDir()
	sys := webobj.NewSystem(
		webobj.WithFabric(webobj.NewMemFabric()),
		webobj.WithDataDir(dir),
		webobj.WithDurability(webobj.Durability{Fsync: webobj.FsyncAlways}),
	)
	defer sys.Close()
	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(server, "doc", webobj.WebDoc(), webobj.ConferenceStrategy(time.Hour)); err != nil {
		t.Fatal(err)
	}
	mirror, err := sys.NewMirror("mirror", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(mirror, "doc"); err != nil {
		t.Fatalf("mirror of a durable system must host memory-only, got: %v", err)
	}
	cache, err := sys.NewCache("cache", mirror)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, "doc"); err != nil {
		t.Fatalf("cache of a durable system must host memory-only, got: %v", err)
	}
	d, err := sys.Open("doc", webobj.AsClient(3), webobj.At(cache))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Append("p", []byte("durable root, volatile edge")); err != nil {
		t.Fatal(err)
	}
}
