package webobj_test

import (
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/transport/memnet"
	"repro/webobj"
)

// TestWithDigestIntervalRecoversPartitionedCache drives the anti-entropy
// knob through the public API: a system built with WithDigestInterval heals
// a partitioned cache with no foreground traffic, observed end to end via a
// client read that binds after convergence.
func TestWithDigestIntervalRecoversPartitionedCache(t *testing.T) {
	const interval = 150 * time.Millisecond
	sys := webobj.NewSystem(
		webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(11))),
		webobj.WithDigestInterval(interval),
	)
	t.Cleanup(func() { _ = sys.Close() })

	server, err := sys.NewServer("www")
	if err != nil {
		t.Fatal(err)
	}
	const obj = webobj.ObjectID("digest-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		t.Fatal(err)
	}
	writer, err := sys.Open(obj, webobj.At(server))
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	cid := writer.Client()

	if err := writer.Append("log", []byte("a")); err != nil {
		t.Fatal(err)
	}
	waitCovered := func(seq uint64, what string) {
		t.Helper()
		deadline := time.Now().Add(2 * interval)
		for {
			v, err := cache.Applied(obj)
			if err != nil {
				t.Fatal(err)
			}
			if v[cid] >= seq {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("cache never covered write %d: %s", seq, what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitCovered(1, "pre-partition write")

	net := sys.Network()
	net.Partition("store/www", "store/proxy")
	if err := writer.Append("log", []byte("b")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // flush ships into the partition
	net.Heal("store/www", "store/proxy")

	// No reads, no writes: the 2x-interval deadline inside waitCovered is
	// the acceptance bound, and only a digest can get us there.
	waitCovered(2, "post-heal convergence with zero foreground traffic")
	if s := net.Stats(); s.ByKind[msg.KindDigest] == 0 {
		t.Fatalf("no digest frames on the wire: %+v", s.ByKind)
	}
	cs, err := cache.Stats(obj)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DigestDemands == 0 {
		t.Fatalf("cache never demanded off a digest: %+v", cs)
	}

	// The recovered state is live for ordinary clients.
	reader, err := sys.Open(obj) // picks the cache (lowest layer)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	pg, err := reader.Get("log")
	if err != nil || string(pg.Content) != "ab" {
		t.Fatalf("post-recovery read: %q, %v", pg, err)
	}
}

// TestWithStoreDigestIntervalOverride: the per-store option wins over the
// system default, including turning heartbeats off for one store.
func TestWithStoreDigestIntervalOverride(t *testing.T) {
	sys := webobj.NewSystem(
		webobj.WithFabric(webobj.NewMemFabric(memnet.WithSeed(12))),
		webobj.WithDigestInterval(50*time.Millisecond),
	)
	t.Cleanup(func() { _ = sys.Close() })

	server, err := sys.NewServer("www", webobj.WithStoreDigestInterval(0)) // off here
	if err != nil {
		t.Fatal(err)
	}
	const obj = webobj.ObjectID("quiet-doc")
	if err := sys.Publish(server, obj, webobj.WebDoc(), webobj.ConferenceStrategy(5*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cache, err := sys.NewCache("proxy", server)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replicate(cache, obj); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	if s := sys.Network().Stats(); s.ByKind[msg.KindDigest] != 0 {
		t.Fatalf("server with digest override 0 still heartbeated: %+v", s.ByKind)
	}
}
