package webobj

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/semantics/applog"
	"repro/internal/semantics/kvstore"
	"repro/internal/semantics/webdoc"
	"repro/internal/transport"
)

// binding is the shared client-side core every typed handle wraps: one
// proxy bound to one replica, plus the endpoint the binding owns. All
// session-guarantee bookkeeping lives in the proxy; the typed handles only
// translate methods to marshalled invocations.
type binding struct {
	proxy *core.Proxy
	ep    transport.Endpoint
	once  sync.Once
	// sys/object/failover drive the retry-and-rebind loop in invoke
	// (failover.go); a nil sys falls back to single-shot calls. pinned
	// marks an At()-bound handle, which retries in place but never
	// migrates to another replica.
	sys      *System
	object   ObjectID
	failover FailoverConfig
	pinned   bool
	// closeHook runs once on Close, before teardown; pinned-client
	// bindings use it to report the session's write-sequence floor to the
	// resolver so a future session reusing the identity resumes past it.
	closeHook func()
}

// Client returns the binding's client identity.
func (b *binding) Client() ids.ClientID { return b.proxy.Client() }

// StoreAddr returns the address of the store the binding is attached to.
func (b *binding) StoreAddr() string { return b.proxy.StoreAddr() }

// Rebind moves this client to another store, keeping session guarantees
// (the Monotonic Reads travelling-client scenario).
func (b *binding) Rebind(at *Store) error { return b.proxy.Rebind(at.Addr()) }

// Close releases the binding and its endpoint. Idempotent.
func (b *binding) Close() {
	b.once.Do(func() {
		if b.closeHook != nil {
			b.closeHook()
		}
		b.proxy.Close()
		_ = b.ep.Close()
	})
}

// Document is a typed client binding to a WebDoc object: a distributed
// multi-page Web document.
type Document struct {
	*binding
}

// Get retrieves a page.
func (d *Document) Get(page string) (*Page, error) {
	out, err := d.invoke(msg.Invocation{Method: webdoc.MethodGetPage, Page: page})
	if err != nil {
		return nil, err
	}
	return webdoc.DecodePage(out)
}

// Stat retrieves page metadata without content.
func (d *Document) Stat(page string) (*Page, error) {
	out, err := d.invoke(msg.Invocation{Method: webdoc.MethodStatPage, Page: page})
	if err != nil {
		return nil, err
	}
	return webdoc.DecodePage(out)
}

// Put replaces a page.
func (d *Document) Put(page string, content []byte, contentType string) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: content, ContentType: contentType, ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := d.invoke(msg.Invocation{Method: webdoc.MethodPutPage, Page: page, Args: args})
	return err
}

// Append adds content to a page (the paper's incremental update).
func (d *Document) Append(page string, content []byte) error {
	args := webdoc.EncodeWriteArgs(webdoc.WriteArgs{
		Content: content, ModifiedNanos: time.Now().UnixNano(),
	})
	_, err := d.invoke(msg.Invocation{Method: webdoc.MethodAppendPage, Page: page, Args: args})
	return err
}

// Delete removes a page.
func (d *Document) Delete(page string) error {
	_, err := d.invoke(msg.Invocation{Method: webdoc.MethodDeletePage, Page: page})
	return err
}

// Pages lists page names.
func (d *Document) Pages() ([]string, error) {
	out, err := d.invoke(msg.Invocation{Method: webdoc.MethodListPages})
	if err != nil {
		return nil, err
	}
	return webdoc.DecodeStrings(out)
}

// Map is a typed client binding to a KV object: a distributed key-value
// map.
type Map struct {
	*binding
}

// Get returns the value stored under key.
func (m *Map) Get(key string) ([]byte, error) {
	out, err := m.invoke(msg.Invocation{Method: kvstore.MethodGet, Page: key})
	// Copied before return: the reply payload may alias a shared transport
	// buffer, which a caller retaining the value would otherwise pin. The
	// other read methods decode into fresh memory already.
	return append([]byte(nil), out...), err
}

// Put stores value under key.
func (m *Map) Put(key string, value []byte) error {
	_, err := m.invoke(msg.Invocation{Method: kvstore.MethodPut, Page: key, Args: value})
	return err
}

// Delete removes key.
func (m *Map) Delete(key string) error {
	_, err := m.invoke(msg.Invocation{Method: kvstore.MethodDelete, Page: key})
	return err
}

// Keys lists the sorted key set.
func (m *Map) Keys() ([]string, error) {
	out, err := m.invoke(msg.Invocation{Method: kvstore.MethodKeys})
	if err != nil {
		return nil, err
	}
	return kvstore.DecodeKeys(out)
}

// Log is a typed client binding to an AppLog object: a distributed
// append-only log.
type Log struct {
	*binding
}

// Append adds an entry to the log.
func (l *Log) Append(payload []byte) error {
	_, err := l.invoke(msg.Invocation{Method: applog.MethodAppend, Args: payload})
	return err
}

// Len returns the number of entries.
func (l *Log) Len() (int, error) {
	out, err := l.invoke(msg.Invocation{Method: applog.MethodLen})
	if err != nil {
		return 0, err
	}
	return applog.DecodeLen(out)
}

// Entry returns the i-th entry.
func (l *Log) Entry(i int) ([]byte, error) {
	out, err := l.invoke(msg.Invocation{Method: applog.MethodEntry, Args: applog.EncodeIndex(i)})
	// Copied before return; see Map.Get.
	return append([]byte(nil), out...), err
}

// Suffix returns all entries from index i on.
func (l *Log) Suffix(i int) ([][]byte, error) {
	out, err := l.invoke(msg.Invocation{Method: applog.MethodSuffix, Args: applog.EncodeIndex(i)})
	if err != nil {
		return nil, err
	}
	return applog.DecodeEntries(out)
}
